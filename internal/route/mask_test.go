package route

import (
	"math/rand"
	"testing"

	"anton2/internal/topo"
)

// TestChoicesAvoidingSingleLink: for every (src, dst) pair on a small torus
// and every single failed torus link, ChoicesAvoiding must find failure-free
// choices (a single unidirectional outage is always avoidable: the parallel
// slice of the same dimension hop remains), and the returned choices must
// verifiably avoid the link.
func TestChoicesAvoidingSingleLink(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(2, 2, 2), AntonScheme{})
	m := cfg.Machine
	rng := rand.New(rand.NewSource(11))
	nodes := m.Shape.NumNodes()
	for trial := 0; trial < 200; trial++ {
		src := topo.NodeEp{Node: rng.Intn(nodes), Ep: 0}
		dst := topo.NodeEp{Node: rng.Intn(nodes), Ep: 1}
		if src.Node == dst.Node {
			continue
		}
		c := RandomChoices(rng)
		// Fail one torus link actually used by the preferred route, so the
		// reroute path is exercised.
		hops := Walk(cfg, src, dst, c.Order, c.Slice, c.Ties, ClassRequest)
		var torus []int
		for _, h := range hops {
			if m.IsTorusChan(h.Chan) {
				torus = append(torus, h.Chan)
			}
		}
		if len(torus) == 0 {
			continue
		}
		failed := map[int]bool{torus[rng.Intn(len(torus))]: true}
		got, rerouted, ok := ChoicesAvoiding(cfg, src, dst, c, ClassRequest, failed)
		if !ok {
			t.Fatalf("trial %d: no avoiding route for %v->%v around %v", trial, src, dst, failed)
		}
		if !rerouted {
			t.Fatalf("trial %d: failed link on preferred route but no reroute reported", trial)
		}
		if UsesAny(cfg, src, dst, got, ClassRequest, failed) {
			t.Fatalf("trial %d: returned choices still use the failed link", trial)
		}
	}
}

// TestChoicesAvoidingNoFault: with an empty failure set the original choices
// come back unchanged (the common path must not perturb routing).
func TestChoicesAvoidingNoFault(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(2, 2, 2), AntonScheme{})
	rng := rand.New(rand.NewSource(3))
	src, dst := topo.NodeEp{Node: 0, Ep: 0}, topo.NodeEp{Node: 7, Ep: 1}
	c := RandomChoices(rng)
	got, rerouted, ok := ChoicesAvoiding(cfg, src, dst, c, ClassRequest, nil)
	if !ok || rerouted || got != c {
		t.Fatalf("empty mask perturbed choices: %+v -> %+v (rerouted=%v ok=%v)", c, got, rerouted, ok)
	}
}

// TestChoicesAvoidingUnroutable: failing both slices of every +X link out of
// the source's column makes some destinations unreachable under minimal
// routing; ChoicesAvoiding must report ok=false rather than loop or panic.
func TestChoicesAvoidingUnroutable(t *testing.T) {
	cfg := cfgFor(t, topo.Shape3(2, 2, 2), AntonScheme{})
	m := cfg.Machine
	src := topo.NodeEp{Node: 0, Ep: 0}
	dst := topo.NodeEp{Node: m.Shape.NodeID(topo.NodeCoord{X: 1}), Ep: 1}
	// The minimal route 0->(1,0,0) must take exactly one X hop from node 0;
	// fail both slices in both X directions at the source node.
	failed := map[int]bool{}
	for _, dir := range []topo.Direction{topo.XPos, topo.XNeg} {
		for s := 0; s < topo.NumSlices; s++ {
			failed[m.TorusChanID(src.Node, dir, s)] = true
		}
	}
	rng := rand.New(rand.NewSource(5))
	_, _, ok := ChoicesAvoiding(cfg, src, dst, RandomChoices(rng), ClassRequest, failed)
	if ok {
		t.Fatal("ChoicesAvoiding found a route through a fully failed dimension")
	}
}
