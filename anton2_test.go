package anton2

import (
	"testing"

	"anton2/internal/area"
	"anton2/internal/packaging"
	"anton2/internal/topo"
)

// These tests exercise the public facade end to end at small scale; the
// heavy per-figure regeneration lives in bench_test.go.

func TestFacadeDeadlockFree(t *testing.T) {
	if err := VerifyDeadlockFree(NewShape(3, 3, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorstCaseSearch(t *testing.T) {
	results := WorstCaseSearch()
	if len(results) != 24 {
		t.Fatalf("got %d direction orders, want 24", len(results))
	}
	best := results[0].WorstLoad
	for _, r := range results {
		if r.WorstLoad < best {
			best = r.WorstLoad
		}
	}
	if best != 2.0 {
		t.Errorf("best worst-case load = %g, want 2.0", best)
	}
}

func TestFacadeAreaBreakdown(t *testing.T) {
	t1 := AreaBreakdown().Table1()
	total := t1[area.Router] + t1[area.EndpointAdapter] + t1[area.ChannelAdapter]
	if total <= 8 || total >= 10 {
		t.Errorf("network die share %.2f%%, want ~9.2%%", total)
	}
}

func TestFacadePackaging(t *testing.T) {
	plan, err := PackagingPlan(NewShape(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumBackplanes() != 32 || plan.NumRacks() != 4 {
		t.Errorf("512-node plan: %d backplanes, %d racks; want 32, 4", plan.NumBackplanes(), plan.NumRacks())
	}
	if _, err := PackagingPlan(NewShape(5, 4, 4)); err == nil {
		t.Error("non-tiling shape must be rejected")
	}
}

func TestFacadeMulticast(t *testing.T) {
	shape := NewShape(8, 8, 8)
	root := NodeCoord{X: 2, Y: 2, Z: 2}
	dests := []NodeEp{
		{Node: shape.NodeID(NodeCoord{X: 3, Y: 2, Z: 2}), Ep: 0},
		{Node: shape.NodeID(NodeCoord{X: 3, Y: 3, Z: 2}), Ep: 0},
		{Node: shape.NodeID(NodeCoord{X: 2, Y: 3, Z: 2}), Ep: 0},
	}
	tree := MulticastTree(shape, root, dests, topo.AllDimOrders[0])
	if tree.TorusHops() >= 4 {
		t.Errorf("tree uses %d hops for an L of 3 neighbors; prefix sharing failed", tree.TorusHops())
	}
	if s := MulticastSavings(shape, root, dests, topo.AllDimOrders[0]); s < 1 {
		t.Errorf("savings = %d, want at least 1", s)
	}
	table := CompileMulticast(shape, tree)
	if table.TotalDeliveries() != len(dests) {
		t.Errorf("compiled table delivers %d copies, want %d", table.TotalDeliveries(), len(dests))
	}
}

// TestFacadeSimulatedMulticast drives a compiled table through a machine via
// the public API.
func TestFacadeSimulatedMulticast(t *testing.T) {
	shape := NewShape(4, 4, 1)
	root := NodeCoord{X: 1, Y: 1, Z: 0}
	var dests []NodeEp
	for _, off := range [][2]int{{1, 0}, {0, 1}, {1, 1}, {-1, 0}} {
		c := shape.Wrap(NodeCoord{X: root.X + off[0], Y: root.Y + off[1]})
		dests = append(dests, NodeEp{Node: shape.NodeID(c), Ep: 0})
	}
	tree := MulticastTree(shape, root, dests, topo.AllDimOrders[0])
	cfg := DefaultConfig(shape)
	cfg.Multicast = map[int]*MulticastTable{1: CompileMulticast(shape, tree)}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := NodeEp{Node: shape.NodeID(root), Ep: 0}
	want := m.InjectMulticast(src, 1, 0, 0)
	if _, err := m.RunUntilDelivered(uint64(want), 200_000); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeEnergyModel(t *testing.T) {
	if PaperEnergyModel.Fixed != 42.7 {
		t.Errorf("paper model fixed energy = %v", PaperEnergyModel.Fixed)
	}
	e := PaperEnergyModel.FlitEnergy(0, 0, 0)
	if e != 42.7 {
		t.Errorf("back-to-back zero-payload flit = %v pJ", e)
	}
}

func TestFacadeConstants(t *testing.T) {
	if CyclesToNS(3) < 1.9 || CyclesToNS(3) > 2.1 {
		t.Errorf("3 cycles = %v ns, want ~2 at 1.5 GHz", CyclesToNS(3))
	}
	if Tornado().Name() != "tornado" || ReverseTornado().Name() != "reverse-tornado" {
		t.Error("pattern constructors mislabeled")
	}
	// Packaging constants from the paper.
	if packaging.NodesPerBackplane != 16 || packaging.MaxNodes != 4096 {
		t.Error("packaging constants do not match Figure 2")
	}
}
