package anton2

// The benchmarks in this file regenerate the paper's evaluation: one
// benchmark per table and figure, reporting the figure's headline numbers
// through b.ReportMetric and printing the full rows/series under -v. The
// defaults favor runtimes of seconds to tens of seconds per figure; set
// ANTON2_BENCH_FULL=1 for larger machines and batches closer to the paper's
// 512-node measurements (minutes per figure). The sweep benchmarks fan their
// points out over the internal/exp worker pool; per-point seeds derive from
// spec hashes, so the measured values are independent of the pool size.

import (
	"fmt"
	"os"
	"testing"

	"anton2/internal/area"
	"anton2/internal/loadcalc"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/wctraffic"
)

func fullScale() bool { return os.Getenv("ANTON2_BENCH_FULL") != "" }

// benchShape is the simulated machine for the saturation experiments: one
// 8-ary dimension preserves the deep arbitration chains the paper's 8x8x8
// machine has, at tractable cost.
func benchShape() Shape {
	if fullScale() {
		return NewShape(8, 8, 4)
	}
	return NewShape(8, 4, 2)
}

func benchBatches() []int {
	if fullScale() {
		return []int{64, 256, 1024}
	}
	return []int{64, 256}
}

// BenchmarkFig4WorstCase reproduces the Section 2.4 search: the optimized
// direction order limits the worst-case mesh-channel load to 2 torus
// channels (Figure 4); disabling the skip-channel policy raises it to 3.
func BenchmarkFig4WorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := WorstCaseSearch()
		best := results[0].WorstLoad
		var defaultLoad float64
		for _, r := range results {
			if r.WorstLoad < best {
				best = r.WorstLoad
			}
			if r.Order == topo.DefaultDirOrder {
				defaultLoad = r.WorstLoad
			}
		}
		_, throughOnly := wctraffic.Best(topo.DefaultChip(), wctraffic.Policy{Through: true})
		b.ReportMetric(best, "worst-load-best")
		b.ReportMetric(defaultLoad, "worst-load-default-order")
		b.ReportMetric(throughOnly, "worst-load-through-only")
		if i == 0 {
			b.Logf("paper: best order worst-case load = 2 torus channels")
			b.Logf("measured: best=%.1f default-order=%.1f through-only-skips=%.1f", best, defaultLoad, throughOnly)
		}
	}
}

// BenchmarkFig9Throughput measures batch throughput beyond saturation for
// 2-hop neighbor and uniform traffic under round-robin and inverse-weighted
// arbitration (Figure 9). Weights come from uniform-pattern loads for all
// measured patterns, as in the paper.
func BenchmarkFig9Throughput(b *testing.B) {
	patterns := []Pattern{NHop{N: 2}, Uniform{}}
	for _, pat := range patterns {
		for _, arb := range []struct {
			name string
			kind byte
		}{{"rr", 0}, {"iw", 1}} {
			b.Run(fmt.Sprintf("%s/%s", pat.Name(), arb.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mc := DefaultConfig(benchShape())
					if arb.kind == 1 {
						mc.Arbiter = InverseWeightedArbiters
					}
					rs, err := ThroughputSweepOpts(ThroughputConfig{
						Machine:        mc,
						Pattern:        pat,
						WeightPatterns: []Pattern{Uniform{}},
					}, benchBatches(), ParallelSweep(0))
					if err != nil {
						b.Fatal(err)
					}
					last := rs[len(rs)-1]
					b.ReportMetric(last.Normalized, "norm-throughput")
					b.ReportMetric(last.MaxUtilization, "max-torus-util")
					b.ReportMetric(last.Fairness, "jain-fairness")
					if i == 0 {
						for _, r := range rs {
							b.Logf("%s/%s batch=%d: norm=%.3f maxUtil=%.3f fairness=%.4f cycles=%d",
								pat.Name(), arb.name, r.Batch, r.Normalized, r.MaxUtilization, r.Fairness, r.Cycles)
						}
					}
				}
			})
		}
	}
}

// BenchmarkFig10Blend measures tornado/reverse-tornado blending under the
// four weight configurations of Figure 10.
func BenchmarkFig10Blend(b *testing.B) {
	fractions := []float64{0, 0.5, 1}
	batch := 128
	if fullScale() {
		fractions = []float64{0, 0.25, 0.5, 0.75, 1}
		batch = 512
	}
	for _, mode := range []WeightMode{WeightsNone, WeightsForward, WeightsReverse, WeightsBoth} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := BlendSweepOpts(BlendConfig{
					Machine: DefaultConfig(benchShape()),
					Weights: mode,
					Batch:   batch,
				}, fractions, ParallelSweep(0))
				if err != nil {
					b.Fatal(err)
				}
				min := rs[0].Normalized
				for _, r := range rs {
					if r.Normalized < min {
						min = r.Normalized
					}
					if i == 0 {
						b.Logf("%v f=%.2f: norm=%.3f cycles=%d", mode, r.ForwardFraction, r.Normalized, r.Cycles)
					}
				}
				b.ReportMetric(min, "min-norm-throughput")
			}
		})
	}
}

// BenchmarkFig11Latency measures one-way latency versus inter-node hops and
// fits the linear model (the paper reports 80.7 ns + 39.1 ns/hop).
func BenchmarkFig11Latency(b *testing.B) {
	shape := NewShape(4, 4, 4)
	if fullScale() {
		shape = NewShape(8, 8, 8)
	}
	for i := 0; i < b.N; i++ {
		res, err := RunLatency(DefaultLatencyConfig(shape))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SlopeNS, "ns-per-hop")
		b.ReportMetric(res.InterceptNS, "fixed-ns")
		b.ReportMetric(res.MinNS, "min-one-way-ns")
		if i == 0 {
			b.Logf("paper: 80.7 ns + 39.1 ns/hop, min 99 ns")
			b.Logf("measured: %.1f ns + %.1f ns/hop (r2=%.4f), min %.1f ns",
				res.InterceptNS, res.SlopeNS, res.R2, res.MinNS)
			for _, p := range res.Points {
				b.Logf("  hops=%d latency=%.1f ns (%d pairs)", p.Hops, p.MeanNS, p.Pairs)
			}
		}
	}
}

// BenchmarkFig12Decomposition derives the minimum-latency budget.
func BenchmarkFig12Decomposition(b *testing.B) {
	cfg := DefaultLatencyConfig(NewShape(4, 4, 4))
	for i := 0; i < b.N; i++ {
		comps := DecomposeMinLatency(cfg)
		var total, network float64
		for _, c := range comps {
			total += c.NS
			if c.Name != "software send" && c.Name != "sync + handler dispatch" {
				network += c.NS
			}
		}
		b.ReportMetric(total, "min-latency-ns")
		b.ReportMetric(100*network/total, "network-pct")
		if i == 0 {
			b.Logf("paper: 99 ns minimum, network ~40%%")
			for _, c := range comps {
				b.Logf("  %-28s %5.1f ns", c.Name, c.NS)
			}
			b.Logf("  total %.1f ns (network %.0f%%)", total, 100*network/total)
		}
	}
}

// BenchmarkFig13Energy runs the two-route energy subtraction across
// injection rates for the three payload patterns and refits the model.
func BenchmarkFig13Energy(b *testing.B) {
	flits := 1200
	rates := [][2]int{{1, 8}, {1, 2}, {3, 4}, {1, 1}}
	mc := DefaultConfig(NewShape(1, 1, 1))
	for i := 0; i < b.N; i++ {
		var all []EnergyPoint
		for _, payload := range []PayloadKind{PayloadZeros, PayloadOnes, PayloadRandom} {
			pts, err := EnergySweepOpts(mc, PaperEnergyModel, payload, rates, flits, ParallelSweep(0))
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, pts...)
			if i == 0 {
				for _, p := range pts {
					b.Logf("%s r=%.3f: %.1f pJ/flit (h=%.1f n=%.1f a/r=%.2f)",
						payload, p.Rate, p.PerFlitPJ, p.H, p.N, p.AOverR)
				}
			}
		}
		m := FitEnergyModel(all)
		b.ReportMetric(m.Fixed, "fit-fixed-pJ")
		b.ReportMetric(m.PerBitFlip, "fit-per-flip-pJ")
		b.ReportMetric(m.PerActivation, "fit-per-act-pJ")
		if i == 0 {
			b.Logf("paper model: E = 42.7 + 0.837h + (34.4 + 0.250n)(a/r) pJ")
			b.Logf("refit:       E = %.1f + %.3fh + (%.1f + %.3fn)(a/r) pJ",
				m.Fixed, m.PerBitFlip, m.PerActivation, m.PerActSetBit)
		}
	}
}

// BenchmarkTable1Area evaluates the component-area model.
func BenchmarkTable1Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1 := AreaBreakdown().Table1()
		b.ReportMetric(t1[area.Router], "router-pct-die")
		b.ReportMetric(t1[area.EndpointAdapter], "endpoint-pct-die")
		b.ReportMetric(t1[area.ChannelAdapter], "channel-pct-die")
		if i == 0 {
			b.Logf("paper:    router 3.4%%, endpoint 1.1%%, channel 4.7%%")
			b.Logf("measured: router %.1f%%, endpoint %.1f%%, channel %.1f%%",
				t1[area.Router], t1[area.EndpointAdapter], t1[area.ChannelAdapter])
		}
	}
}

// BenchmarkTable2Area evaluates the category breakdown of network area.
func BenchmarkTable2Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, total := AreaBreakdown().Table2()
		b.ReportMetric(total[area.Queues], "queues-pct")
		b.ReportMetric(total[area.Arbiters], "arbiters-pct")
		if i == 0 {
			b.Logf("paper: queues 46.6%%, reduction 9.6%%, link 8.9%%, config 8.6%%, debug 7.8%%, misc 7.3%%, multicast 5.7%%, arbiters 5.4%%")
			for k := area.Category(0); k < area.NumCategories; k++ {
				b.Logf("  %-14s %5.1f%%", k, total[k])
			}
		}
	}
}

// BenchmarkFig3Multicast measures the torus-hop savings of multicast for
// the Figure 3 style neighborhood broadcast.
func BenchmarkFig3Multicast(b *testing.B) {
	shape := NewShape(8, 8, 8)
	root := NodeCoord{X: 4, Y: 4, Z: 4}
	var dests []NodeEp
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			c := shape.Wrap(NodeCoord{X: root.X + dx, Y: root.Y + dy, Z: root.Z})
			dests = append(dests, NodeEp{Node: shape.NodeID(c), Ep: 0})
		}
	}
	for i := 0; i < b.N; i++ {
		saved := MulticastSavings(shape, root, dests, topo.AllDimOrders[0])
		tree := MulticastTree(shape, root, dests, topo.AllDimOrders[0])
		b.ReportMetric(float64(saved), "hops-saved")
		b.ReportMetric(float64(tree.TorusHops()), "tree-hops")
		if i == 0 {
			b.Logf("paper example: multicast saves 12 torus hops vs unicast")
			b.Logf("measured: unicast %d hops, tree %d hops, saved %d",
				tree.TorusHops()+saved, tree.TorusHops(), saved)
		}
	}
}

// BenchmarkDeadlockCheck verifies the Section 2.5 VC scheme's acyclicity.
func BenchmarkDeadlockCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := VerifyDeadlockFree(NewShape(4, 4, 4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVCScheme quantifies the area cost of the baseline 2n-VC
// scheme relative to the Anton scheme (Section 2.5's motivation).
func BenchmarkAblationVCScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		anton := area.Compute(area.Default())
		cfg := area.Default()
		cfg.Scheme = route.BaselineScheme{}
		baseline := area.Compute(cfg)
		growth := baseline.NetworkTotal()/anton.NetworkTotal() - 1
		b.ReportMetric(100*growth, "network-area-growth-pct")
		if i == 0 {
			b.Logf("baseline 2n-VC scheme costs %.1f%% more network area (T-group VCs 6 vs 4 per class)", 100*growth)
		}
	}
}

// BenchmarkAblationDirectionOrder compares worst-case loads across on-chip
// routing algorithm families.
func BenchmarkAblationDirectionOrder(b *testing.B) {
	chip := topo.DefaultChip()
	for i := 0; i < b.N; i++ {
		best := wctraffic.Evaluate(chip, topo.DefaultDirOrder, wctraffic.DefaultPolicy)
		paper := wctraffic.Evaluate(chip, topo.PaperDirOrder, wctraffic.DefaultPolicy)
		b.ReportMetric(best.WorstLoad, "default-order-load")
		b.ReportMetric(paper.WorstLoad, "paper-order-load")
		if i == 0 {
			b.Logf("this layout: %v -> %.1f; paper's published order %v -> %.1f (layout-dependent; see DESIGN.md)",
				topo.DefaultDirOrder, best.WorstLoad, topo.PaperDirOrder, paper.WorstLoad)
		}
	}
}

// BenchmarkAblationSkipChannels compares zero-load X-through latency with
// and without skip channels by simulating a 3-hop X route.
func BenchmarkAblationSkipChannels(b *testing.B) {
	run := func(useSkip bool) float64 {
		cfg := DefaultLatencyConfig(NewShape(8, 2, 2))
		cfg.Machine.UseSkip = useSkip
		cfg.Machine.ExitSkip = useSkip
		cfg.PairsPerHop = 2
		cfg.PingPongs = 4
		cfg.MaxHops = 4
		res, err := RunLatency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.SlopeNS
	}
	for i := 0; i < b.N; i++ {
		withSkip := run(true)
		withoutSkip := run(false)
		b.ReportMetric(withSkip, "ns-per-hop-skip")
		b.ReportMetric(withoutSkip, "ns-per-hop-noskip")
		if i == 0 {
			b.Logf("per-hop latency: with skips %.1f ns, without %.1f ns", withSkip, withoutSkip)
		}
	}
}

// BenchmarkUtilizationClaim checks the ~90%% effective-bandwidth claim: max
// torus utilization under sustained uniform load with weighted arbiters.
func BenchmarkUtilizationClaim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc := DefaultConfig(benchShape())
		mc.Arbiter = InverseWeightedArbiters
		r, err := RunThroughput(ThroughputConfig{
			Machine:        mc,
			Pattern:        traffic.Uniform{},
			WeightPatterns: []Pattern{Uniform{}},
			Batch:          512,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxUtilization, "max-torus-util")
		if i == 0 {
			b.Logf("paper: ~90%% utilization of effective channel bandwidth; measured max %.1f%%", 100*r.MaxUtilization)
		}
	}
}

// BenchmarkAblationSlices quantifies channel slicing with per-packet slice
// randomization: pinning traffic to one slice doubles the busiest channel's
// load and halves the saturation rate.
func BenchmarkAblationSlices(b *testing.B) {
	m := topo.MustMachine(NewShape(4, 4, 4))
	cfg := route.NewConfig(m)
	flows := traffic.Uniform{}.Flows(m)
	for i := 0; i < b.N; i++ {
		balanced := loadcalc.Compute(cfg, m.Chip.CoreEndpoints(), flows, route.ClassRequest)
		pinned := loadcalc.ComputeFixedSlice(cfg, m.Chip.CoreEndpoints(), flows, route.ClassRequest, 0)
		b.ReportMetric(balanced.SaturationRate(), "sat-rate-randomized")
		b.ReportMetric(pinned.SaturationRate(), "sat-rate-pinned")
		if i == 0 {
			b.Logf("slice randomization doubles saturation rate: %.4f vs %.4f pkts/cycle/core",
				balanced.SaturationRate(), pinned.SaturationRate())
		}
	}
}

// BenchmarkCycleKernel measures the simulator's own speed — simulated
// cycles per wall-clock second — for each cycle-engine configuration on the
// two workloads that bracket its operating range: a sparse trickle (most
// components idle most cycles; the active-set scheduler's best case) and a
// saturated uniform burst (near-peak occupancy; its break-even case). Every
// engine simulates the identical deterministic workload, so the cycles/sec
// ratios are apples-to-apples; cmd/anton2bench's kernelbench experiment
// writes the same measurements to BENCH_7.json and gates CI on the
// active/scan speedup ratio. ANTON2_BENCH_FULL=1 adds the 8x8x8 and
// 16x16x16 paper-scale machines.
func BenchmarkCycleKernel(b *testing.B) {
	shapes := []Shape{NewShape(8, 4, 2)}
	if fullScale() {
		shapes = append(shapes, NewShape(8, 8, 8), NewShape(16, 16, 16))
	}
	engines := []struct {
		name   string
		mutate func(*Config)
	}{
		{"scan", func(c *Config) { c.Engine = EngineScan }},
		{"active", func(c *Config) { c.Engine = EngineActive }},
		{"active-sharded4", func(c *Config) { c.Shards = 4 }},
	}
	for _, shape := range shapes {
		for _, wl := range []KernelWorkload{KernelSparse, KernelSaturated} {
			for _, eng := range engines {
				name := fmt.Sprintf("%dx%dx%d/%s/%s", shape.K[0], shape.K[1], shape.K[2], wl, eng.name)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						mc := DefaultConfig(shape)
						eng.mutate(&mc)
						r, err := RunKernel(KernelConfig{Machine: mc, Workload: wl})
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(r.CyclesPerSec, "cycles/sec")
						if i == 0 {
							b.Logf("%s: %d cycles, %d packets, %.3fs wall = %.0f cycles/sec",
								name, r.Cycles, r.Packets, r.WallSec, r.CyclesPerSec)
						}
					}
				})
			}
		}
	}
}
