package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagRejection pins the exit-2 contract: invalid flags never start a
// server.
func TestFlagRejection(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"stray argument", []string{"serve-harder"}},
		{"negative workers", []string{"-workers", "-1"}},
		{"negative queue", []string{"-max-queue", "-3"}},
		{"negative timeout", []string{"-queue-timeout", "-5s"}},
		{"zero loadtest requests", []string{"-lt-requests", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", got, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("rejection produced no diagnostic")
			}
		})
	}
}

// TestLoadTestMode runs the self-load-test end to end, small: the binary
// starts its own server on an ephemeral port, drives it, and reports
// percentiles and cache behavior.
func TestLoadTestMode(t *testing.T) {
	if testing.Short() {
		t.Skip("load test in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-loadtest",
		"-lt-requests", "12",
		"-lt-clients", "3",
		"-lt-batch", "8",
		"-workers", "4",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"throughput", "p50", "p99", "status 200 x12", "anton2serve_cache_hit_rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
