// Command anton2serve runs the experiment-serving subsystem: a long-running
// HTTP server that accepts experiment specs (the same families anton2bench
// runs), deduplicates identical in-flight submissions onto one simulation,
// shards sweep points across a worker pool, and serves content-addressed
// canonical artifacts — byte-identical to anton2bench's — from a
// persistent on-disk cache that survives restarts.
//
// Usage:
//
//	anton2serve [-addr host:port] [-cache dir] [-workers N] [-point-parallel N]
//	            [-max-queue N] [-queue-timeout d] [-run-timeout d] [-drain-timeout d]
//	            [-checkpoint-every cycles]
//	anton2serve -loadtest [-lt-requests N] [-lt-clients N] [-lt-seed N]
//	            [-lt-shape KxKxK] [-lt-batch N]
//
// API:
//
//	POST /v1/runs                submit a spec; 202 + run id (200 if cached)
//	POST /v1/runs?wait=1         submit and block for the artifact
//	GET  /v1/runs/{id}           run status (state, done/total, cycles)
//	GET  /v1/runs/{id}/artifact  canonical artifact (202 while running)
//	GET  /v1/runs/{id}/events    live progress as server-sent events
//	GET  /livez                  liveness (always 200 while the process serves)
//	GET  /readyz                 readiness (503 while recovering the WAL or draining)
//	GET  /healthz                same as /readyz (poll-until-200 compatible)
//	GET  /metrics                queue depth, cache hit rate, utilization
//
// Invalid submissions are refused with 400 (the CLI's exit-2 cases), a full
// admission queue with 429, and deadline expiry with 504. SIGINT/SIGTERM
// triggers a graceful drain: in-flight runs finish (up to -drain-timeout),
// new submissions get 503, then the process exits.
//
// Every admitted run is recorded in a write-ahead log under the cache
// directory until its artifact is durably persisted, so a killed server
// re-admits unfinished runs on restart. With -checkpoint-every N, each
// checkpoint-aware sweep point additionally persists a resumable simulation
// snapshot at least every N simulated cycles, and a restarted server resumes
// those points mid-run, bit-identical to an uninterrupted execution.
//
// With -loadtest, the binary instead starts a private server instance and
// drives it with a seeded request mix derived from the repo's own traffic
// pattern generators, reporting throughput, latency percentiles, and the
// final cache-tier counters. Exit status 1 if any request failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anton2/internal/serve"
)

const usageHint = "usage: anton2serve [-addr host:port] [-cache dir] [-workers N] [-loadtest] (run with -h for the full list)"

var (
	addr          *string
	cacheDir      *string
	workers       *int
	pointParallel *int
	maxQueue      *int
	queueTimeout  *time.Duration
	runTimeout    *time.Duration
	drainTimeout  *time.Duration
	ckptEvery     *uint64

	loadtest   *bool
	ltRequests *int
	ltClients  *int
	ltSeed     *int64
	ltShape    *string
	ltBatch    *int
)

func registerFlags(fs *flag.FlagSet) {
	addr = fs.String("addr", "127.0.0.1:8723", "listen address")
	cacheDir = fs.String("cache", "", "persistent artifact-cache directory (default anton2serve-cache; a temp dir in -loadtest mode)")
	workers = fs.Int("workers", 2, "concurrently executing runs")
	pointParallel = fs.Int("point-parallel", 0, "per-run sweep-point worker pool (0 = one per run)")
	maxQueue = fs.Int("max-queue", 16, "queued runs before submissions get 429")
	queueTimeout = fs.Duration("queue-timeout", 30*time.Second, "max wait for a worker slot before a run fails with 504")
	runTimeout = fs.Duration("run-timeout", 5*time.Minute, "max run execution time before cancellation with 504")
	drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before runs are cancelled")
	ckptEvery = fs.Uint64("checkpoint-every", 0, "persist a resumable per-point snapshot at least every N simulated cycles (0 = off); with the run WAL this makes kill -9 recoverable mid-simulation")

	loadtest = fs.Bool("loadtest", false, "self-load-test: start a private server and drive it with generated traffic")
	ltRequests = fs.Int("lt-requests", 64, "loadtest: total submissions")
	ltClients = fs.Int("lt-clients", 4, "loadtest: concurrent submitters")
	ltSeed = fs.Int64("lt-seed", 1, "loadtest: draw-sequence seed")
	ltShape = fs.String("lt-shape", "2x2x2", "loadtest: torus shape for pooled specs")
	ltBatch = fs.Int("lt-batch", 32, "loadtest: per-point packet batch for pooled specs")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flag parsing and validation (exit 2 on
// rejection with a one-line hint), then either serving or load-testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("anton2serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reject := func(err error) int {
		fmt.Fprintln(stderr, "anton2serve:", err)
		fmt.Fprintln(stderr, usageHint)
		return 2
	}
	if fs.NArg() > 0 {
		return reject(fmt.Errorf("unexpected argument %q", fs.Arg(0)))
	}
	if *workers < 0 || *pointParallel < 0 || *maxQueue < 0 {
		return reject(fmt.Errorf("workers, point-parallel, and max-queue must be >= 0"))
	}
	if *queueTimeout < 0 || *runTimeout < 0 || *drainTimeout < 0 {
		return reject(fmt.Errorf("timeouts must be >= 0"))
	}
	if *ltRequests <= 0 || *ltClients <= 0 {
		return reject(fmt.Errorf("lt-requests and lt-clients must be > 0"))
	}

	dir := *cacheDir
	if dir == "" {
		if *loadtest {
			tmp, err := os.MkdirTemp("", "anton2serve-loadtest-*")
			if err != nil {
				fmt.Fprintln(stderr, "anton2serve:", err)
				return 1
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		} else {
			dir = "anton2serve-cache"
		}
	}
	store, err := serve.OpenStore(dir)
	if err != nil {
		fmt.Fprintln(stderr, "anton2serve:", err)
		return 1
	}
	srv, err := serve.NewServer(serve.Config{
		Store:            store,
		Workers:          *workers,
		PointParallelism: *pointParallel,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueTimeout,
		RunTimeout:       *runTimeout,
		CheckpointEvery:  *ckptEvery,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "anton2serve: "+format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "anton2serve:", err)
		return 1
	}

	listenAddr := *addr
	if *loadtest {
		listenAddr = "127.0.0.1:0" // private instance, ephemeral port
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fmt.Fprintln(stderr, "anton2serve:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *loadtest {
		defer srv.Close()
		defer hs.Close()
		report, err := serve.LoadTest(serve.LoadTestConfig{
			BaseURL:     "http://" + ln.Addr().String(),
			Clients:     *ltClients,
			Requests:    *ltRequests,
			Seed:        *ltSeed,
			Shape:       *ltShape,
			Batch:       *ltBatch,
			WaitTimeout: *runTimeout,
		})
		if err != nil {
			fmt.Fprintln(stderr, "anton2serve:", err)
			return 1
		}
		fmt.Fprint(stdout, report)
		if report.Errors > 0 {
			return 1
		}
		return 0
	}

	fmt.Fprintf(stderr, "anton2serve: listening on http://%s (cache %s, %d workers)\n",
		ln.Addr(), store.Dir(), *workers)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "anton2serve:", err)
		return 1
	case <-sigCtx.Done():
	}
	stop()

	fmt.Fprintf(stderr, "anton2serve: draining (up to %v)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := srv.Drain(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "anton2serve: shutdown:", err)
	}
	if drained != nil {
		fmt.Fprintln(stderr, "anton2serve: drain deadline exceeded; runs cancelled")
		return 1
	}
	fmt.Fprintln(stderr, "anton2serve: drained cleanly")
	return 0
}
