// Command anton2route runs the Section 2.4 routing analysis: it evaluates
// every direction-order on-chip routing algorithm against all permutation
// switching demands, prints each algorithm's worst-case mesh-channel load,
// the winning orders, and the routes induced by the worst-case permutation
// (Figure 4). It also verifies deadlock freedom of the VC schemes.
//
// Usage:
//
//	anton2route [-policy through|exit|entry|both] [-verify-shape XxYxZ]
package main

import (
	"flag"
	"fmt"
	"os"

	"anton2/internal/deadlock"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/wctraffic"
)

func main() {
	policyFlag := flag.String("policy", "exit", "skip-channel policy: through, exit, entry, or both")
	verifyShape := flag.String("verify-shape", "4x4x4", "torus shape for the deadlock verification")
	flag.Parse()

	var pol wctraffic.Policy
	switch *policyFlag {
	case "through":
		pol = wctraffic.Policy{Through: true}
	case "exit":
		pol = wctraffic.DefaultPolicy
	case "entry":
		pol = wctraffic.Policy{Through: true, Entry: true}
	case "both":
		pol = wctraffic.Policy{Through: true, Entry: true, Exit: true}
	default:
		fmt.Fprintf(os.Stderr, "anton2route: unknown policy %q\n", *policyFlag)
		os.Exit(1)
	}

	chip := topo.DefaultChip()
	fmt.Printf("Worst-case switching-demand analysis (Section 2.4), skip policy %q\n", *policyFlag)
	fmt.Println("==================================================================")
	results := wctraffic.SearchAll(chip, pol)
	best := results[0].WorstLoad
	for _, r := range results {
		if r.WorstLoad < best {
			best = r.WorstLoad
		}
	}
	for _, r := range results {
		mark := " "
		if r.WorstLoad == best {
			mark = "*"
		}
		def := ""
		if r.Order == topo.DefaultDirOrder {
			def = " (default)"
		}
		fmt.Printf("  %s %-12v worst-case mesh load %.1f torus channels%s\n", mark, r.Order, r.WorstLoad, def)
	}
	fmt.Printf("\n  optimum: %.1f torus channels of load on the busiest mesh channel\n", best)
	fmt.Printf("  (each 288 Gb/s mesh channel carries 2 x 89.6 Gb/s with headroom)\n")

	// Figure 4: routes of the worst-case permutation under the default
	// order.
	def := wctraffic.Evaluate(chip, topo.DefaultDirOrder, pol)
	fmt.Printf("\nWorst-case permutation for %v:\n", topo.DefaultDirOrder)
	fmt.Printf("  sources:      X+  X-  Y+  Y-  Z+  Z-\n  destinations:")
	for _, d := range def.WorstPerm {
		fmt.Printf(" %3v", d)
	}
	fmt.Println()
	loads := wctraffic.Loads(chip, topo.DefaultDirOrder, pol, def.WorstPerm)
	fmt.Println("\nMesh channels loaded by the worst-case permutation (Figure 4):")
	for i, l := range loads {
		ch := &chip.IntraChans[i]
		if l >= 2 && ch.From.Kind == topo.LocRouter && ch.To.Kind == topo.LocRouter {
			fmt.Printf("  %-20s %.1f torus channels\n", ch.Name, l)
		}
	}

	// Deadlock verification.
	shape, err := parseShape(*verifyShape)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nDeadlock verification on %v (Section 2.5)\n", shape)
	fmt.Println("==========================================")
	for _, s := range []route.Scheme{route.AntonScheme{}, route.BaselineScheme{}, route.NoDatelineScheme{}} {
		m := topo.MustMachine(shape)
		cfg := route.NewConfig(m)
		cfg.Scheme = s
		err := deadlock.Verify(cfg, deadlock.Options{})
		verdict := "deadlock-free"
		if err != nil {
			verdict = "CYCLIC (expected for broken schemes)"
		}
		fmt.Printf("  %-20s T-group VCs per class: %d, M-group: %d -> %s\n",
			s.Name(), s.TorusVCs(), s.MeshVCs(), verdict)
	}
}

func parseShape(s string) (topo.TorusShape, error) {
	var kx, ky, kz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); err != nil {
		return topo.TorusShape{}, fmt.Errorf("anton2route: bad shape %q", s)
	}
	shape := topo.Shape3(kx, ky, kz)
	return shape, shape.Validate()
}
