package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestInvalidFlagsRejected covers the flag-validation contract: every
// malformed invocation exits 2 before any simulation starts, and prints a
// one-line usage hint alongside the specific complaint.
func TestInvalidFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error line
	}{
		{"negative corrupt rate", []string{"-fault", "corrupt=-0.5"}, "must be in [0,1]"},
		{"rate above one", []string{"-fault", "stall=1.5"}, "must be in [0,1]"},
		{"NaN rate", []string{"-fault", "corrupt=NaN"}, "must be finite"},
		{"malformed spec element", []string{"-fault", "corrupt"}, "malformed spec"},
		{"unknown spec key", []string{"-fault", "warp=0.5"}, "unknown spec key"},
		{"negative faillinks", []string{"-fault", "faillinks=-1"}, "faillinks"},
		{"negative batch", []string{"-batch", "-4"}, "batch must be positive"},
		{"bad shape", []string{"-shape", "2x2"}, "bad shape"},
		{"unknown pattern", []string{"-pattern", "sideways"}, "unknown pattern"},
		{"unknown arbiter", []string{"-arbiter", "fifo"}, "unknown arbiter"},
		{"unknown scheme", []string{"-scheme", "extra"}, "unknown scheme"},
		{"unknown flag", []string{"-frobnicate"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
			}
			if tc.want != "" && !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, errb.String())
			}
			if tc.want != "" && !strings.Contains(errb.String(), "usage:") {
				t.Errorf("stderr missing usage hint:\n%s", errb.String())
			}
		})
	}
}

// TestRunFaultFree exercises the full fault-free path on a tiny machine.
func TestRunFaultFree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-shape", "2x2x2", "-batch", "4", "-check"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "normalized throughput") {
		t.Errorf("missing throughput summary:\n%s", out.String())
	}
}

// TestRunWithFaultSpec exercises the fault path end to end: the run completes
// under corruption, reports the reliability counters, and exits 0.
func TestRunWithFaultSpec(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-shape", "2x2x2", "-batch", "4", "-check",
		"-fault", "corrupt=0.02"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"fault layer:", "corrupt_injected", "retransmits"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in output:\n%s", want, out.String())
		}
	}
}
