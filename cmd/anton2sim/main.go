// Command anton2sim runs a single network simulation: every core on every
// node sends a batch of packets under a chosen traffic pattern and arbiter
// flavor, and the tool reports throughput, utilization, and fairness.
//
// Usage:
//
//	anton2sim [-shape 8x4x2] [-pattern uniform|1-hop|2-hop|tornado|reverse-tornado|bit-complement]
//	          [-arbiter rr|iw] [-batch 256] [-scheme anton|baseline-2n|vcless|angara] [-seed 1] [-json dir] [-check]
//	          [-fault corrupt=0.01,stall=0.001,...] [-telemetry dir]
//	          [-engine active|scan] [-shards N]
//	          [-checkpoint-dir dir] [-checkpoint-every N] [-resume]
//	          [-cpuprofile file] [-memprofile file]
//
// -engine selects the cycle kernel: the default active-set scheduler skips
// idle components and whole idle cycles; -engine scan restores the
// reference loop that ticks every component every cycle. -shards N steps
// the machine across N goroutine shards with a deterministic phase-barrier
// merge. All three produce bit-identical results and artifacts — the flags
// change only simulation speed (and are excluded from result cache keys).
// Sharding requires the active engine and is incompatible with -check and
// -telemetry.
//
// With -check, the run executes under the internal/check invariant suite
// (flit conservation, credit accounting, VC monotonicity, dimension order);
// any violation fails the run. Checking never perturbs results or seeds.
//
// With -fault, the run executes under the internal/fault layer: the spec is a
// comma-joined key=value list (keys: corrupt, stall, creditloss [rates in
// 0..1], stallcycles, timeout, resync [cycles], faillinks, window, retry
// [counts]) selecting deterministic fault injection with go-back-N
// reliable-link retransmission. An invalid spec — malformed syntax, a
// negative, >1, or NaN rate — is rejected before any simulation starts, with
// exit status 2.
//
// With -checkpoint-dir and -checkpoint-every N, the run persists a complete
// resumable snapshot (machine state plus driver position) every N cycles,
// torn-write-safe; -resume restarts an interrupted run from its last
// checkpoint and finishes bit-identically to an uninterrupted one.
// Checkpointing is incompatible with -check, -telemetry, and -fault runs.
//
// With -telemetry, the run executes under the internal/telemetry collector:
// a JSON report (<dir>/anton2sim.json) with windowed channel utilization,
// per-VC occupancy histograms, and arbiter grant shares, plus a
// Perfetto-loadable <dir>/anton2sim.trace.json packet trace, and a torus
// utilization heatmap on stdout. Telemetry never perturbs results or seeds.
// -cpuprofile and -memprofile write pprof profiles of the process.
//
// The run goes through the internal/exp orchestrator: the simulation seed is
// derived from a canonical hash of the full configuration (the -seed value
// is one input to that hash), and -json writes the structured result
// artifact under the given directory.
//
// Exit status: 0 on success, 1 if the simulation fails, 2 for invalid flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"anton2/internal/arbiter"
	"anton2/internal/core"
	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

const usageHint = "usage: anton2sim [-shape KxKxK] [-pattern name] [-arbiter rr|iw] [-batch N] [-scheme name] [-fault k=v,...] (run with -h for the full list)"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses and validates flags (exit 2 on
// rejection, with a one-line usage hint), then executes the simulation
// (exit 1 on failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("anton2sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		shapeFlag    = fs.String("shape", "8x4x2", "torus shape KxKxK")
		patternFlag  = fs.String("pattern", "uniform", "traffic pattern")
		arbFlag      = fs.String("arbiter", "rr", "arbitration: rr (round-robin) or iw (inverse-weighted)")
		batch        = fs.Int("batch", 256, "packets per core")
		schemeFlag   = fs.String("scheme", "anton", "routing strategy: any registered name (anton, baseline-2n, vcless, angara; baseline = baseline-2n)")
		seed         = fs.Uint64("seed", 1, "base random seed (hashed with the config into the run seed)")
		jsonDir      = fs.String("json", "", "write a JSON result artifact under this directory")
		checkFlag    = fs.Bool("check", false, "run under the runtime invariant-checking suite")
		faultFlag    = fs.String("fault", "", "fault-injection spec, e.g. corrupt=0.01,stall=0.001,faillinks=1")
		telemetryDir = fs.String("telemetry", "", "write a telemetry report and packet trace under this directory")
		cpuprofile   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
		engineFlag   = fs.String("engine", "", "cycle engine: active (default) or scan (the reference every-component-every-cycle loop)")
		shardsFlag   = fs.Int("shards", 0, "step the machine across N goroutine shards (0/1 = serial; requires the active engine)")
		ckptDir      = fs.String("checkpoint-dir", "", "persist crash-recovery checkpoints under this directory")
		ckptEvery    = fs.Uint64("checkpoint-every", 0, "cycles between checkpoints (0 disables; requires -checkpoint-dir)")
		resumeFlag   = fs.Bool("resume", false, "resume an interrupted run from its checkpoint in -checkpoint-dir")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reject := func(err error) int {
		fmt.Fprintln(stderr, "anton2sim:", err)
		fmt.Fprintln(stderr, usageHint)
		return 2
	}

	shape, err := parseShape(*shapeFlag)
	if err != nil {
		return reject(err)
	}
	pattern, err := parsePattern(*patternFlag)
	if err != nil {
		return reject(err)
	}
	if *batch <= 0 {
		return reject(fmt.Errorf("batch must be positive, got %d", *batch))
	}

	mc := machine.DefaultConfig(shape)
	mc.Seed = *seed
	mc.Check = *checkFlag
	name := *schemeFlag
	if name == "baseline" { // historical spelling of baseline-2n
		name = (route.BaselineScheme{}).Name()
	}
	strat, ok := route.StrategyByName(name)
	if !ok {
		return reject(fmt.Errorf("unknown scheme %q (registered: %s)", *schemeFlag, strings.Join(route.StrategyNames(), ", ")))
	}
	mc.Scheme = strat
	switch *arbFlag {
	case "rr":
		mc.Arbiter = arbiter.KindRoundRobin
	case "iw":
		mc.Arbiter = arbiter.KindInverseWeighted
	default:
		return reject(fmt.Errorf("unknown arbiter %q", *arbFlag))
	}
	if *faultFlag != "" {
		spec, err := fault.ParseSpec(*faultFlag)
		if err != nil {
			return reject(err)
		}
		mc.Fault = &spec
	}
	switch *engineFlag {
	case "", machine.EngineScan, machine.EngineActive:
		mc.Engine = *engineFlag
	default:
		return reject(fmt.Errorf("unknown engine %q (valid: scan, active)", *engineFlag))
	}
	if *shardsFlag < 0 {
		return reject(fmt.Errorf("shards must be >= 0, got %d", *shardsFlag))
	}
	mc.Shards = *shardsFlag
	var telReport *telemetry.Report
	if *telemetryDir != "" {
		mc.Telemetry = &telemetry.Options{
			Dir:          *telemetryDir,
			Name:         "anton2sim",
			TracePackets: 4,
			Sink:         func(r *telemetry.Report) { telReport = r },
		}
	}

	opts := exp.Serial()
	if *ckptEvery > 0 || *resumeFlag {
		if *ckptDir == "" {
			return reject(fmt.Errorf("-checkpoint-every/-resume require -checkpoint-dir"))
		}
		if *ckptEvery == 0 {
			return reject(fmt.Errorf("-resume requires -checkpoint-every"))
		}
		if *checkFlag || *telemetryDir != "" || *faultFlag != "" {
			return reject(fmt.Errorf("checkpointing is incompatible with -check, -telemetry, and -fault"))
		}
		opts.Checkpoint = exp.CheckpointOptions{Dir: *ckptDir, Every: *ckptEvery, Resume: *resumeFlag}
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "anton2sim:", err)
		return 1
	}
	err = simulate(mc, pattern, *batch, *jsonDir, opts, stdout, stderr, &telReport)
	stopProfiles()
	if err != nil {
		fmt.Fprintln(stderr, "anton2sim:", err)
		return 1
	}
	return 0
}

func simulate(mc machine.Config, pattern traffic.Pattern, batch int, jsonDir string, opts exp.Options, stdout, stderr io.Writer, telReport **telemetry.Report) error {
	shape := mc.Shape
	fmt.Fprintf(stdout, "simulating %v, %d cores/node, pattern %s, %s arbiters, %s VC scheme, batch %d\n",
		shape, topo.NumRouters, pattern.Name(), mc.Arbiter, mc.Scheme.Name(), batch)
	if mc.Fault != nil {
		fmt.Fprintf(stdout, "fault layer: %s\n", mc.Fault.Canonical())
	}

	var job exp.Job
	if mc.Fault != nil {
		job = core.FaultJob(core.FaultConfig{Machine: mc, Pattern: pattern, Batch: batch})
	} else {
		job = core.ThroughputJob(core.ThroughputConfig{
			Machine:        mc,
			Pattern:        pattern,
			WeightPatterns: []traffic.Pattern{pattern},
			Batch:          batch,
		})
	}
	rs := exp.Run([]exp.Job{job}, opts)
	if jsonDir != "" {
		path, err := exp.WriteArtifacts(jsonDir, "anton2sim", rs)
		if err != nil {
			return err
		}
		fmt.Fprintln(stderr, "anton2sim: wrote", path)
	}
	if err := exp.FirstErr(rs); err != nil {
		return err
	}

	packets := uint64(shape.NumNodes()) * uint64(topo.NumRouters) * uint64(batch)
	fmt.Fprintf(stdout, "\n  packets delivered:      %d\n", packets)
	switch res := rs[0].Value.(type) {
	case core.ThroughputResult:
		fmt.Fprintf(stdout, "  completion time:        %d cycles (%.2f us)\n", res.Cycles, machine.CyclesToNS(float64(res.Cycles))/1000)
		fmt.Fprintf(stdout, "  normalized throughput:  %.3f (1.0 = busiest torus channel saturated)\n", res.Normalized)
		fmt.Fprintf(stdout, "  torus utilization:      mean %.1f%%, max %.1f%%\n", 100*res.MeanUtilization, 100*res.MaxUtilization)
		fmt.Fprintf(stdout, "  completion fairness:    %.4f (Jain index over per-core finish times)\n", res.Fairness)
	case core.FaultPoint:
		fmt.Fprintf(stdout, "  completion time:        %d cycles (%.2f us)\n", res.Cycles, machine.CyclesToNS(float64(res.Cycles))/1000)
		fmt.Fprintf(stdout, "  normalized throughput:  %.3f (1.0 = fault-free saturation)\n", res.Throughput)
		fmt.Fprintf(stdout, "  delivery latency:       mean %.1f cycles, p99 %.0f cycles\n", res.MeanLatency, res.P99Latency)
		if res.DegradedRun {
			fmt.Fprintf(stdout, "  outcome:                DEGRADED (completed by rerouting around failed links)\n")
		}
		for _, k := range []string{"corrupt_injected", "corrupt_detected", "retransmits", "timeouts", "stalls_injected", "credits_dropped", "links_failed", "rerouted"} {
			if v := res.Counters[k]; v > 0 {
				fmt.Fprintf(stdout, "  %-22s  %d\n", k+":", v)
			}
		}
	}
	if *telReport != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, telemetry.RenderHeatmap(*telReport))
	}
	return nil
}

// startProfiles begins the cpuprofile capture and returns a stop function
// that finishes it and writes the memprofile snapshot; run it before the
// process exits or the profiles are truncated.
func startProfiles(cpuprofile, memprofile string, stderr io.Writer) (func(), error) {
	var stops []func()
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if memprofile != "" {
		stops = append(stops, func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "anton2sim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "anton2sim: memprofile:", err)
			}
		})
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

func parsePattern(s string) (traffic.Pattern, error) {
	switch s {
	case "uniform":
		return traffic.Uniform{}, nil
	case "1-hop":
		return traffic.NHop{N: 1}, nil
	case "2-hop":
		return traffic.NHop{N: 2}, nil
	case "tornado":
		return traffic.Tornado(), nil
	case "reverse-tornado":
		return traffic.ReverseTornado(), nil
	case "bit-complement":
		return traffic.BitComplement(), nil
	case "nearest-neighbor":
		return traffic.NearestNeighbor{}, nil
	}
	return nil, fmt.Errorf("unknown pattern %q", s)
}

func parseShape(s string) (topo.TorusShape, error) {
	var kx, ky, kz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); err != nil {
		return topo.TorusShape{}, fmt.Errorf("bad shape %q", s)
	}
	shape := topo.Shape3(kx, ky, kz)
	return shape, shape.Validate()
}
