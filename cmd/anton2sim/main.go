// Command anton2sim runs a single network simulation: every core on every
// node sends a batch of packets under a chosen traffic pattern and arbiter
// flavor, and the tool reports throughput, utilization, and fairness.
//
// Usage:
//
//	anton2sim [-shape 8x4x2] [-pattern uniform|1-hop|2-hop|tornado|reverse-tornado|bit-complement]
//	          [-arbiter rr|iw] [-batch 256] [-scheme anton|baseline] [-seed 1] [-json dir] [-check]
//	          [-telemetry dir] [-cpuprofile file] [-memprofile file]
//
// With -check, the run executes under the internal/check invariant suite
// (flit conservation, credit accounting, VC monotonicity, dimension order);
// any violation fails the run. Checking never perturbs results or seeds.
//
// With -telemetry, the run executes under the internal/telemetry collector:
// a JSON report (<dir>/anton2sim.json) with windowed channel utilization,
// per-VC occupancy histograms, and arbiter grant shares, plus a
// Perfetto-loadable <dir>/anton2sim.trace.json packet trace, and a torus
// utilization heatmap on stdout. Telemetry never perturbs results or seeds.
// -cpuprofile and -memprofile write pprof profiles of the process.
//
// The run goes through the internal/exp orchestrator: the simulation seed is
// derived from a canonical hash of the full configuration (the -seed value
// is one input to that hash), and -json writes the structured result
// artifact under the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"anton2/internal/arbiter"
	"anton2/internal/core"
	"anton2/internal/exp"
	"anton2/internal/machine"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
)

var (
	shapeFlag    = flag.String("shape", "8x4x2", "torus shape KxKxK")
	patternFlag  = flag.String("pattern", "uniform", "traffic pattern")
	arbFlag      = flag.String("arbiter", "rr", "arbitration: rr (round-robin) or iw (inverse-weighted)")
	batch        = flag.Int("batch", 256, "packets per core")
	schemeFlag   = flag.String("scheme", "anton", "VC scheme: anton (n+1) or baseline (2n)")
	seed         = flag.Uint64("seed", 1, "base random seed (hashed with the config into the run seed)")
	jsonDir      = flag.String("json", "", "write a JSON result artifact under this directory")
	checkFlag    = flag.Bool("check", false, "run under the runtime invariant-checking suite")
	telemetryDir = flag.String("telemetry", "", "write a telemetry report and packet trace under this directory")
	cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
)

func main() {
	flag.Parse()
	stopProfiles, err := startProfiles()
	fail(err)
	err = run()
	stopProfiles()
	fail(err)
}

func run() error {
	shape, err := parseShape(*shapeFlag)
	if err != nil {
		return err
	}
	pattern, err := parsePattern(*patternFlag)
	if err != nil {
		return err
	}

	mc := machine.DefaultConfig(shape)
	mc.Seed = *seed
	mc.Check = *checkFlag
	switch *schemeFlag {
	case "anton":
		mc.Scheme = route.AntonScheme{}
	case "baseline":
		mc.Scheme = route.BaselineScheme{}
	default:
		return fmt.Errorf("unknown scheme %q", *schemeFlag)
	}
	switch *arbFlag {
	case "rr":
		mc.Arbiter = arbiter.KindRoundRobin
	case "iw":
		mc.Arbiter = arbiter.KindInverseWeighted
	default:
		return fmt.Errorf("unknown arbiter %q", *arbFlag)
	}
	var telReport *telemetry.Report
	if *telemetryDir != "" {
		mc.Telemetry = &telemetry.Options{
			Dir:          *telemetryDir,
			Name:         "anton2sim",
			TracePackets: 4,
			Sink:         func(r *telemetry.Report) { telReport = r },
		}
	}

	fmt.Printf("simulating %v, %d cores/node, pattern %s, %s arbiters, %s VC scheme, batch %d\n",
		shape, topo.NumRouters, pattern.Name(), mc.Arbiter, mc.Scheme.Name(), *batch)

	job := core.ThroughputJob(core.ThroughputConfig{
		Machine:        mc,
		Pattern:        pattern,
		WeightPatterns: []traffic.Pattern{pattern},
		Batch:          *batch,
	})
	rs := exp.Run([]exp.Job{job}, exp.Serial())
	if *jsonDir != "" {
		path, err := exp.WriteArtifacts(*jsonDir, "anton2sim", rs)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "anton2sim: wrote", path)
	}
	if err := exp.FirstErr(rs); err != nil {
		return err
	}
	res := rs[0].Value.(core.ThroughputResult)

	packets := uint64(shape.NumNodes()) * uint64(topo.NumRouters) * uint64(*batch)
	fmt.Printf("\n  packets delivered:      %d\n", packets)
	fmt.Printf("  completion time:        %d cycles (%.2f us)\n", res.Cycles, machine.CyclesToNS(float64(res.Cycles))/1000)
	fmt.Printf("  normalized throughput:  %.3f (1.0 = busiest torus channel saturated)\n", res.Normalized)
	fmt.Printf("  torus utilization:      mean %.1f%%, max %.1f%%\n", 100*res.MeanUtilization, 100*res.MaxUtilization)
	fmt.Printf("  completion fairness:    %.4f (Jain index over per-core finish times)\n", res.Fairness)
	if telReport != nil {
		fmt.Println()
		fmt.Print(telemetry.RenderHeatmap(telReport))
	}
	return nil
}

// startProfiles begins the -cpuprofile capture and returns a stop function
// that finishes it and writes the -memprofile snapshot; run it before the
// process exits or the profiles are truncated.
func startProfiles() (func(), error) {
	var stops []func()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		stops = append(stops, func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anton2sim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "anton2sim: memprofile:", err)
			}
		})
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

func parsePattern(s string) (traffic.Pattern, error) {
	switch s {
	case "uniform":
		return traffic.Uniform{}, nil
	case "1-hop":
		return traffic.NHop{N: 1}, nil
	case "2-hop":
		return traffic.NHop{N: 2}, nil
	case "tornado":
		return traffic.Tornado(), nil
	case "reverse-tornado":
		return traffic.ReverseTornado(), nil
	case "bit-complement":
		return traffic.BitComplement(), nil
	case "nearest-neighbor":
		return traffic.NearestNeighbor{}, nil
	}
	return nil, fmt.Errorf("unknown pattern %q", s)
}

func parseShape(s string) (topo.TorusShape, error) {
	var kx, ky, kz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); err != nil {
		return topo.TorusShape{}, fmt.Errorf("bad shape %q", s)
	}
	shape := topo.Shape3(kx, ky, kz)
	return shape, shape.Validate()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "anton2sim:", err)
		os.Exit(1)
	}
}
