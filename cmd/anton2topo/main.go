// Command anton2topo prints the Anton 2 network topology: the Figure 1
// on-chip layout (routers, endpoint adapters, torus-channel adapters, skip
// channels) and the Figure 2 packaging plan for a machine size.
//
// Usage:
//
//	anton2topo [-shape XxYxZ]
package main

import (
	"flag"
	"fmt"
	"os"

	"anton2/internal/packaging"
	"anton2/internal/topo"
)

func main() {
	shapeFlag := flag.String("shape", "8x8x8", "torus shape KxKxK")
	flag.Parse()

	shape, err := parseShape(*shapeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	chip := topo.DefaultChip()
	fmt.Println("Anton 2 on-chip network (Figure 1)")
	fmt.Println("==================================")
	fmt.Printf("%d routers in a %dx%d mesh, %d endpoint adapters, %d torus-channel adapters\n\n",
		topo.NumRouters, topo.MeshW, topo.MeshH, topo.NumEndpoints, topo.NumChannelAdapters)

	for v := topo.MeshH - 1; v >= 0; v-- {
		for u := 0; u < topo.MeshW; u++ {
			r := chip.RouterAt(topo.MeshCoord{U: u, V: v})
			var eps, ads int
			for _, p := range r.Ports {
				switch p.Kind {
				case topo.PortEndpoint:
					eps++
				case topo.PortAdapter:
					ads++
				}
			}
			tag := ""
			if r.SkipPort() >= 0 {
				tag = "*"
			}
			fmt.Printf("  R%d,%d%-1s[E:%d C:%d]", u, v, tag, eps, ads)
		}
		fmt.Println()
	}
	fmt.Println("\n  * = skip-channel corner router")

	fmt.Println("\nChannel adapters:")
	for i := 0; i < topo.NumChannelAdapters; i++ {
		a := &chip.Adapters[i]
		fmt.Printf("  C%-5s at %v\n", a.ID, a.Router)
	}
	fmt.Println("\nSkip channels:")
	for _, p := range chip.SkipPairs {
		fmt.Printf("  %v <-> %v\n", p[0], p[1])
	}

	fmt.Printf("\nPackaging plan for %v (Figure 2)\n", shape)
	fmt.Println("================================")
	plan, err := packaging.Build(shape)
	if err != nil {
		fmt.Printf("  %v\n", err)
		return
	}
	fmt.Printf("  %d nodes on %d backplanes (4x4x1 nodecards each) in %d racks\n",
		shape.NumNodes(), plan.NumBackplanes(), plan.NumRacks())
	stats := plan.Stats()
	for _, m := range []packaging.Medium{packaging.BackplaneTrace, packaging.IntraRackCable, packaging.InterRackCable} {
		s := stats[m]
		if s.Links == 0 {
			continue
		}
		example := packaging.Link{Medium: m, LengthCM: s.TotalCM / float64(s.Links)}
		fmt.Printf("  %-18s %5d directed links, mean %.0f cm, latency %d cycles (%.1f ns)\n",
			m, s.Links, s.TotalCM/float64(s.Links), example.LatencyCycles(), example.LatencyNS())
	}
}

func parseShape(s string) (topo.TorusShape, error) {
	var kx, ky, kz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); err != nil {
		return topo.TorusShape{}, fmt.Errorf("anton2topo: bad shape %q (want e.g. 8x8x8)", s)
	}
	shape := topo.Shape3(kx, ky, kz)
	if err := shape.Validate(); err != nil {
		return topo.TorusShape{}, err
	}
	return shape, nil
}
