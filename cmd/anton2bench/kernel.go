package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"anton2/internal/core"
	"anton2/internal/machine"
	"anton2/internal/topo"
)

// kernelArtifact is the BENCH_7.json schema: raw cycles/sec points plus the
// host-independent active/scan speedup ratios the CI gate compares. Raw
// cycles/sec is host-dependent (CPU model, load, core count) and is recorded
// for context only; the ratio of two engines measured back-to-back in the
// same process on the same workload is stable, so regressions gate on it.
type kernelArtifact struct {
	Name       string              `json:"name"`
	Go         string              `json:"go"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Results    []core.KernelResult `json:"results"`
	Speedups   []kernelSpeedup     `json:"speedups"`
}

// kernelSpeedup is one active-over-scan ratio for a (shape, workload) cell.
type kernelSpeedup struct {
	Shape          string  `json:"shape"`
	Workload       string  `json:"workload"`
	ActiveOverScan float64 `json:"active_over_scan"`
}

// kernelEngines are the engine configurations measured per cell. Sharded
// stepping is included for completeness; on few-core hosts its barrier
// overhead can make it slower than plain active — the artifact records
// whatever the host produced.
var kernelEngines = []struct {
	name   string
	mutate func(*machine.Config)
}{
	{"scan", func(c *machine.Config) { c.Engine = machine.EngineScan }},
	{"active", func(c *machine.Config) { c.Engine = machine.EngineActive }},
	{"active-sharded4", func(c *machine.Config) { c.Shards = 4 }},
}

// kernelbench measures simulated cycles/sec per engine on the paper-scale
// shapes and writes the -benchout artifact. With -baseline, it exits with an
// error if any (shape, workload) active/scan speedup fell more than 15%
// below the baseline's ratio.
func kernelbench() error {
	header("Cycle kernel: simulated cycles/sec by engine",
		"n/a (simulator performance, not a paper result)")
	shapes := []topo.TorusShape{topo.Shape3(8, 4, 2), topo.Shape3(8, 8, 8), topo.Shape3(16, 16, 16)}
	if *quick {
		shapes = shapes[:1]
	}
	workloads := []core.KernelWorkload{core.KernelSparse, core.KernelSaturated}

	art := kernelArtifact{Name: "kernelbench", Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, shape := range shapes {
		for _, wl := range workloads {
			perSec := map[string]float64{}
			for _, eng := range kernelEngines {
				mc := machine.DefaultConfig(shape)
				eng.mutate(&mc)
				r, err := core.RunKernel(core.KernelConfig{Machine: mc, Workload: wl})
				if err != nil {
					return fmt.Errorf("kernel %v/%s/%s: %w", shape, wl, eng.name, err)
				}
				art.Results = append(art.Results, r)
				perSec[eng.name] = r.CyclesPerSec
				fmt.Printf("measured: %-9s %-9s %-15s %9d cycles in %7.3fs = %12.0f cycles/sec\n",
					r.Shape, r.Workload, eng.name, r.Cycles, r.WallSec, r.CyclesPerSec)
			}
			sp := kernelSpeedup{
				Shape:          fmt.Sprintf("%dx%dx%d", shape.K[0], shape.K[1], shape.K[2]),
				Workload:       wl.String(),
				ActiveOverScan: perSec["active"] / perSec["scan"],
			}
			art.Speedups = append(art.Speedups, sp)
			fmt.Printf("          %-9s %-9s active/scan speedup: %.1fx\n", sp.Shape, sp.Workload, sp.ActiveOverScan)
		}
	}

	if *benchOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "kernelbench: wrote %s\n", *benchOut)
	}
	if *baselineFlag != "" {
		return gateKernel(art, *baselineFlag)
	}
	return nil
}

// gateKernel compares this run's active/scan speedup ratios against a
// baseline artifact: a cell regresses when its ratio fell below 85% of the
// baseline's. Cells missing from either side are ignored (the baseline may
// have been generated at full scale while the gate runs -quick).
func gateKernel(art kernelArtifact, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kernelbench baseline: %w", err)
	}
	var base kernelArtifact
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("kernelbench baseline %s: %w", path, err)
	}
	baseRatio := map[string]float64{}
	for _, s := range base.Speedups {
		baseRatio[s.Shape+"/"+s.Workload] = s.ActiveOverScan
	}
	var regressions []string
	compared := 0
	for _, s := range art.Speedups {
		want, ok := baseRatio[s.Shape+"/"+s.Workload]
		if !ok || want <= 0 {
			continue
		}
		compared++
		if s.ActiveOverScan < 0.85*want {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s: speedup %.2fx vs baseline %.2fx (-%.0f%%)",
					s.Shape, s.Workload, s.ActiveOverScan, want, 100*(1-s.ActiveOverScan/want)))
		}
	}
	if compared == 0 {
		return fmt.Errorf("kernelbench baseline %s shares no (shape, workload) cells with this run", path)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "kernelbench regression:", r)
		}
		return fmt.Errorf("%d of %d speedup cells regressed >15%% against %s", len(regressions), compared, path)
	}
	fmt.Printf("baseline: %d speedup cells within 15%% of %s\n", compared, path)
	return nil
}
