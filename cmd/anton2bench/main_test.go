package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInvalidFlagsRejected: malformed invocations exit 2 before any
// experiment runs, with a one-line usage hint.
func TestInvalidFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative rate", []string{"-fault", "corrupt=-0.1", "faultsweep"}, "must be in [0,1]"},
		{"NaN rate", []string{"-fault", "stall=NaN", "faultsweep"}, "must be finite"},
		{"malformed spec", []string{"-fault", "corrupt:0.1", "faultsweep"}, "malformed spec"},
		{"unknown spec key", []string{"-fault", "chaos=1", "faultsweep"}, "unknown spec key"},
		{"negative parallel", []string{"-parallel", "-2", "fig4"}, "parallel must be >= 0"},
		{"unknown engine", []string{"-engine", "warp", "fig4"}, "unknown engine"},
		{"negative shards", []string{"-shards", "-1", "fig4"}, "shards must be >= 0"},
		{"sharded scan", []string{"-engine", "scan", "-shards", "2", "fig4"}, "requires the active engine"},
		{"bad shape", []string{"-shape", "8by8", "fig9"}, "bad shape"},
		{"conflicting experiment", []string{"-experiment", "fig4", "fig9"}, "both -experiment"},
		{"unknown flag", []string{"-frobnicate"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errb bytes.Buffer
			if code := run(tc.args, &errb); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, errb.String())
			}
			if tc.want != "" && !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, errb.String())
			}
			if tc.want != "" && !strings.Contains(errb.String(), "usage:") {
				t.Errorf("stderr missing usage hint:\n%s", errb.String())
			}
		})
	}
}

// TestUnknownExperimentExits2 preserves the historical exit-status contract.
func TestUnknownExperimentExits2(t *testing.T) {
	var errb bytes.Buffer
	if code := run([]string{"fig99"}, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "faultsweep") {
		t.Errorf("valid-name list missing faultsweep:\n%s", errb.String())
	}
}

// TestQuickFaultsweepArtifact runs the quick robustness sweep end to end and
// checks the JSON artifact has at least 5 fault-rate points, all successful.
func TestQuickFaultsweepArtifact(t *testing.T) {
	dir := t.TempDir()
	var errb bytes.Buffer
	if code := run([]string{"-quick", "-check", "-json", dir, "faultsweep"}, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "faultsweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Results []struct {
			Spec  string `json:"spec"`
			Error string `json:"error"`
			Value struct {
				CorruptRate float64 `json:"corrupt_rate"`
				Throughput  float64 `json:"throughput"`
			} `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatal(err)
	}
	if len(artifact.Results) < 5 {
		t.Fatalf("artifact has %d points, want >= 5", len(artifact.Results))
	}
	for i, r := range artifact.Results {
		if r.Error != "" {
			t.Errorf("point %d failed: %s", i, r.Error)
		}
		if r.Value.Throughput <= 0 {
			t.Errorf("point %d has no throughput: %+v", i, r.Value)
		}
		if !strings.Contains(r.Spec, "fault=") {
			t.Errorf("point %d spec missing fault key: %s", i, r.Spec)
		}
	}
}

// TestQuickRouteCompareArtifact runs the quick strategy comparison through
// the -experiment flag spelling and checks the canonical artifact scores
// every registered strategy, with the strategy name keyed into each spec.
func TestQuickRouteCompareArtifact(t *testing.T) {
	dir := t.TempDir()
	var errb bytes.Buffer
	if code := run([]string{"-quick", "-json", dir, "-experiment", "routecompare"}, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "routecompare.canonical.json"))
	if err != nil {
		t.Fatal(err)
	}
	var artifact struct {
		Results []struct {
			Spec  string `json:"spec"`
			Error string `json:"error"`
			Value struct {
				Strategy   string  `json:"strategy"`
				Throughput float64 `json:"throughput"`
			} `json:"value"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatal(err)
	}
	strategies := map[string]bool{}
	for i, r := range artifact.Results {
		if r.Error != "" {
			t.Errorf("point %d failed: %s", i, r.Error)
		}
		if r.Value.Throughput <= 0 {
			t.Errorf("point %d has no throughput: %+v", i, r.Value)
		}
		if !strings.Contains(r.Spec, "scheme="+r.Value.Strategy) {
			t.Errorf("point %d spec does not key the strategy %q: %s", i, r.Value.Strategy, r.Spec)
		}
		strategies[r.Value.Strategy] = true
	}
	if len(strategies) < 4 {
		t.Errorf("artifact scores %d strategies, want >= 4: %v", len(strategies), strategies)
	}
}
