// Command anton2bench regenerates the paper's evaluation: every table and
// figure of Section 4 plus the Section 2.4 routing analysis, printing the
// paper's reported numbers next to this reproduction's measurements.
//
// Usage:
//
//	anton2bench [-quick] [-parallel N] [-json dir] [-check] [-telemetry dir]
//	            [-fault corrupt=0.01,...] [-engine active|scan] [-shards N]
//	            [-shape KxKxK] [-cpuprofile file] [-memprofile file]
//	            [-checkpoint-dir dir] [-checkpoint-every N] [-resume]
//	            [-experiment name]
//	            [fig4|fig9|fig10|fig11|fig12|fig13|table1|table2|fig3|fig2|deadlock|faultsweep|routecompare|mdstep|kernelbench|all]
//
// Simulation figures also answer to topic aliases: throughput (fig9), blend
// (fig10), latency (fig11), decomposition (fig12), energy (fig13),
// robustness (faultsweep), routing (routecompare), timestep or workload
// (mdstep), kernel (kernelbench). -experiment is an alternative spelling of
// the positional experiment name.
//
// -engine selects the cycle kernel: the default active-set scheduler ticks
// only components with pending work and skips fully idle cycles; -engine
// scan restores the reference every-component-every-cycle loop. -shards N
// steps each machine across N goroutine shards with a deterministic
// phase-barrier merge (requires the active engine; incompatible with -check
// and -telemetry). All engine configurations produce bit-identical results
// and artifacts — the flags change simulation speed only and are excluded
// from result cache keys.
//
// With -checkpoint-dir and -checkpoint-every N, checkpoint-aware experiment
// points (fig9 throughput, mdstep) persist a resumable snapshot every N
// cycles; a retried attempt resumes from its last checkpoint, and -resume
// also resumes first attempts after a whole-process restart. Resumed points
// are bit-identical to uninterrupted ones. Checkpointing is incompatible
// with -check and -telemetry.
//
// The headline saturation sweeps (fig9, fig10) default to the paper's full
// 8x8x8 (512-node) machine, made tractable by the active-set engine; -shape
// overrides the scale (e.g. -shape 8x4x2 for the pre-promotion machine).
//
// The kernelbench experiment (excluded from `all`) measures the simulator's
// own speed — simulated cycles/sec per engine on sparse and saturated
// workloads at 8x4x2, 8x8x8, and 16x16x16 (-quick: 8x4x2 only) — and writes
// the -benchout artifact (default BENCH_7.json). With -baseline, it exits
// nonzero if any (shape, workload) active/scan speedup ratio fell more than
// 15% below the baseline artifact's; CI gates on the ratio because raw
// cycles/sec is host-dependent.
//
// The routecompare experiment scores every registered routing strategy
// head-to-head on one grid: static deadlock verdict, VC provisioning and
// network-area cost, analytic saturation rate and mean path length, measured
// throughput and delivery latency, and degradation behavior under permanent
// link outages (faillinks sweeps up from the healthy machine). Strategies are
// pluggable — see internal/route.RegisterStrategy — and the strategy name is
// part of every experiment cache key.
//
// The mdstep experiment measures an application-shaped figure of merit:
// end-to-end MD timestep time, with the timestep modeled as three dependent
// communication phases (bursty halo exchange, multicast force distribution
// through compiled spanning trees, global reduction) separated by
// fabric-quiescence barriers. Each registered routing strategy runs the same
// phased workload and the per-phase and total cycle counts are reported;
// the sweep then re-runs the default strategy with traffic capture enabled
// and replays the recorded trace (internal/trace JSON-lines format) on a
// fresh machine, failing unless the replay reproduces every per-phase cycle
// count exactly. With -json, the capture is written as mdstep.trace.jsonl.
//
// The faultsweep experiment sweeps transient-corruption rate under the
// internal/fault layer, measuring throughput and delivery-latency quantiles
// as the reliable-link protocol retransmits around injected faults. -fault
// supplies a base spec (stall, credit-loss, failed-link settings) held fixed
// across the sweep; an invalid spec — malformed syntax, a negative, >1, or
// NaN rate — is rejected with exit status 2 before anything runs.
//
// Without -quick, the saturation experiments run on an 8x4x2 machine with
// batches up to 1024 packets per core (minutes); -quick shrinks them to
// seconds. Simulation figures fan their independent points out over a
// -parallel-sized worker pool (0 = GOMAXPROCS) with per-point seeds derived
// from the experiment specs, so any pool size produces identical results.
// With -json, each figure also writes a structured artifact
// (<dir>/<figure>.json) with per-point values, seeds, and wall times.
// With -check, every simulation runs under the internal/check invariant
// suite (flit conservation, credit accounting, VC monotonicity, dimension
// order, multicast delivery); violations fail the experiment. Checking does
// not perturb results or seeds.
//
// With -telemetry, every simulated point runs under the internal/telemetry
// collector: per-point JSON reports (<dir>/<figure>-pNN.json) with windowed
// channel utilization, per-VC occupancy histograms, and arbiter grant
// shares, plus a Perfetto-loadable <dir>/<figure>-pNN.trace.json packet
// trace, and a per-channel utilization heatmap after each figure. Telemetry,
// like checking, never perturbs results, seeds, or cache keys. -cpuprofile
// and -memprofile write pprof profiles of the bench process itself.
//
// Exit status: 0 on success, 1 if any experiment fails, 2 for invalid flags
// or an unknown experiment name.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"anton2/internal/area"
	"anton2/internal/core"
	"anton2/internal/deadlock"
	"anton2/internal/exp"
	"anton2/internal/fault"
	"anton2/internal/machine"
	"anton2/internal/multicast"
	"anton2/internal/packaging"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/wctraffic"
)

// Flag values live at package level so the figure runners can read them; run
// binds them to a fresh FlagSet per invocation, which keeps the entry point
// testable.
var (
	quick        *bool
	parallel     *int
	jsonDir      *string
	checkFlag    *bool
	faultFlag    *string
	telemetryDir *string
	cpuprofile   *string
	memprofile   *string
	engineFlag   *string
	shardsFlag   *int
	shapeFlag    *string
	benchOut     *string
	baselineFlag *string
	expFlag      *string
	ckptDir      *string
	ckptEvery    *uint64
	resumeFlag   *bool

	// baseFault is the parsed -fault spec; the faultsweep experiment holds
	// it fixed while sweeping corruption rate.
	baseFault *fault.Spec

	// satShapeOverride is the parsed -shape value; nil means the default
	// (8x8x8, or 4x4x2 under -quick).
	satShapeOverride *topo.TorusShape
)

func registerFlags(fs *flag.FlagSet) {
	quick = fs.Bool("quick", false, "smaller machines and batches (seconds instead of minutes)")
	parallel = fs.Int("parallel", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	jsonDir = fs.String("json", "", "write per-figure JSON artifacts under this directory")
	checkFlag = fs.Bool("check", false, "run simulations under the runtime invariant-checking suite")
	faultFlag = fs.String("fault", "", "base fault spec for faultsweep, e.g. stall=0.001,faillinks=1")
	telemetryDir = fs.String("telemetry", "", "write per-point telemetry reports and packet traces under this directory")
	cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the bench process to this file")
	memprofile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	engineFlag = fs.String("engine", "", "cycle engine: active (default) or scan (the reference every-component-every-cycle loop)")
	shardsFlag = fs.Int("shards", 0, "step the machine across N goroutine shards (0/1 = serial; requires the active engine)")
	shapeFlag = fs.String("shape", "", "saturation-experiment torus shape KxKxK (default 8x8x8, or 4x4x2 with -quick)")
	benchOut = fs.String("benchout", "BENCH_7.json", "kernelbench: write the cycles/sec artifact to this file")
	baselineFlag = fs.String("baseline", "", "kernelbench: fail if the active/scan speedup ratio regresses >15% against this artifact")
	expFlag = fs.String("experiment", "", "experiment to run (same as the positional argument)")
	ckptDir = fs.String("checkpoint-dir", "", "persist crash-recovery checkpoints under this directory")
	ckptEvery = fs.Uint64("checkpoint-every", 0, "cycles between checkpoints (0 disables; requires -checkpoint-dir)")
	resumeFlag = fs.Bool("resume", false, "resume interrupted points from their checkpoints in -checkpoint-dir")
}

const usageHint = "usage: anton2bench [-quick] [-parallel N] [-json dir] [-check] [-fault k=v,...] [experiment] (run with -h for the full list)"

// resultCache memoizes simulation points across figures within one
// invocation, so `all` never re-runs a shared configuration.
var resultCache = exp.NewCache()

// experiments maps names to runners, in `all` execution order. skipAll
// entries run only when named explicitly: kernelbench measures the
// simulator's own speed, not the paper's evaluation.
var experiments = []struct {
	name    string
	run     func() error
	skipAll bool
}{
	{"fig4", fig4, false}, {"deadlock", deadlockCheck, false}, {"fig2", fig2, false}, {"fig3", fig3, false},
	{"table1", table1, false}, {"table2", table2, false}, {"fig12", fig12, false}, {"fig13", fig13, false},
	{"fig11", fig11, false}, {"fig9", fig9, false}, {"fig10", fig10, false}, {"faultsweep", faultsweep, false},
	{"routecompare", routecompare, false},
	{"mdstep", mdstep, false},
	{"kernelbench", kernelbench, true},
}

// aliases maps topic names onto figure numbers.
var aliases = map[string]string{
	"throughput":    "fig9",
	"blend":         "fig10",
	"latency":       "fig11",
	"decomposition": "fig12",
	"energy":        "fig13",
	"robustness":    "faultsweep",
	"routing":       "routecompare",
	"timestep":      "mdstep",
	"workload":      "mdstep",
	"kernel":        "kernelbench",
}

func validNames() []string {
	names := make([]string, 0, len(experiments)+len(aliases)+1)
	for _, e := range experiments {
		names = append(names, e.name)
	}
	for a := range aliases {
		names = append(names, a)
	}
	names = append(names, "all")
	sort.Strings(names)
	return names
}

// benchConfig is machine.DefaultConfig plus the -check/-engine/-shards
// wiring; every simulated experiment builds its machines through it. Engine
// and Shards are pure scheduling choices — excluded from experiment cache
// keys because they cannot change results (the cross-engine differential
// tests in internal/core pin that).
func benchConfig(shape topo.TorusShape) machine.Config {
	mc := machine.DefaultConfig(shape)
	mc.Check = *checkFlag
	mc.Engine = *engineFlag
	mc.Shards = *shardsFlag
	return mc
}

// parseShape parses "KxKxK" torus shapes.
func parseShape(s string) (topo.TorusShape, error) {
	var kx, ky, kz int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &kx, &ky, &kz); err != nil {
		return topo.TorusShape{}, fmt.Errorf("bad shape %q", s)
	}
	shape := topo.Shape3(kx, ky, kz)
	return shape, shape.Validate()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the testable entry point: it parses and validates flags (exit 2 on
// rejection, with a one-line usage hint), then dispatches the requested
// experiments.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("anton2bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reject := func(err error) int {
		fmt.Fprintln(stderr, "anton2bench:", err)
		fmt.Fprintln(stderr, usageHint)
		return 2
	}
	if *parallel < 0 {
		return reject(fmt.Errorf("parallel must be >= 0, got %d", *parallel))
	}
	baseFault = nil
	if *faultFlag != "" {
		spec, err := fault.ParseSpec(*faultFlag)
		if err != nil {
			return reject(err)
		}
		baseFault = &spec
	}
	switch *engineFlag {
	case "", machine.EngineScan, machine.EngineActive:
	default:
		return reject(fmt.Errorf("unknown engine %q (valid: scan, active)", *engineFlag))
	}
	if *shardsFlag < 0 {
		return reject(fmt.Errorf("shards must be >= 0, got %d", *shardsFlag))
	}
	if *shardsFlag > 1 && *engineFlag == machine.EngineScan {
		return reject(fmt.Errorf("sharded stepping requires the active engine"))
	}
	if *ckptEvery > 0 || *resumeFlag {
		if *ckptDir == "" {
			return reject(fmt.Errorf("-checkpoint-every/-resume require -checkpoint-dir"))
		}
		if *ckptEvery == 0 {
			return reject(fmt.Errorf("-resume requires -checkpoint-every"))
		}
		if *checkFlag || *telemetryDir != "" {
			return reject(fmt.Errorf("checkpointing is incompatible with -check and -telemetry"))
		}
	}
	satShapeOverride = nil
	if *shapeFlag != "" {
		shape, err := parseShape(*shapeFlag)
		if err != nil {
			return reject(err)
		}
		satShapeOverride = &shape
	}

	stopProfiles, err := startProfiles()
	if err != nil {
		fmt.Fprintln(stderr, "anton2bench:", err)
		return 1
	}
	defer stopProfiles()

	what := "all"
	if *expFlag != "" {
		what = *expFlag
	}
	if fs.NArg() > 0 {
		if *expFlag != "" && fs.Arg(0) != *expFlag {
			return reject(fmt.Errorf("both -experiment %q and positional %q given", *expFlag, fs.Arg(0)))
		}
		what = fs.Arg(0)
	}
	if fig, ok := aliases[what]; ok {
		what = fig
	}
	if what == "all" {
		failed, ran := 0, 0
		for _, e := range experiments {
			if e.skipAll {
				continue
			}
			ran++
			if err := e.run(); err != nil {
				fmt.Fprintf(stderr, "anton2bench: %s failed: %v\n", e.name, err)
				failed++
			}
			fmt.Println()
		}
		if failed > 0 {
			fmt.Fprintf(stderr, "anton2bench: %d of %d experiments failed\n", failed, ran)
			return 1
		}
		return 0
	}
	for _, e := range experiments {
		if e.name == what {
			if err := e.run(); err != nil {
				fmt.Fprintf(stderr, "anton2bench: %s failed: %v\n", e.name, err)
				return 1
			}
			return 0
		}
	}
	fmt.Fprintf(stderr, "anton2bench: unknown experiment %q (valid: %s)\n",
		what, strings.Join(validNames(), ", "))
	return 2
}

// startProfiles begins the -cpuprofile capture and returns a stop function
// that finishes it and writes the -memprofile snapshot; the stop must run
// before the process exits or the profiles are truncated.
func startProfiles() (func(), error) {
	var stops []func()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		stops = append(stops, func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anton2bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "anton2bench: memprofile:", err)
			}
		})
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}, nil
}

// telemetryOpts returns a per-point telemetry factory for one figure: nil
// options when -telemetry is off, otherwise distinct artifact names
// <fig>-p00, <fig>-p01, ... under the -telemetry directory, with a few
// packets traced per point. The last report to finish feeds the post-sweep
// heatmap. Points served from the in-process result cache never run, so
// they write no artifact.
func telemetryOpts(fig string) func() *telemetry.Options {
	if *telemetryDir == "" {
		return func() *telemetry.Options { return nil }
	}
	seq := 0
	return func() *telemetry.Options {
		name := fmt.Sprintf("%s-p%02d", fig, seq)
		seq++
		return &telemetry.Options{
			Dir:          *telemetryDir,
			Name:         name,
			TracePackets: 4,
			Sink:         keepHeatmapReport,
		}
	}
}

var (
	heatmapMu     sync.Mutex
	heatmapReport *telemetry.Report
)

// keepHeatmapReport is the telemetry sink; parallel workers may finish
// concurrently.
func keepHeatmapReport(r *telemetry.Report) {
	heatmapMu.Lock()
	heatmapReport = r
	heatmapMu.Unlock()
}

// printHeatmap renders the most recent telemetry report's channel
// utilization; a no-op when no report was collected.
func printHeatmap() {
	heatmapMu.Lock()
	r := heatmapReport
	heatmapReport = nil
	heatmapMu.Unlock()
	if r != nil {
		fmt.Print(telemetry.RenderHeatmap(r))
	}
}

// sweep runs one figure's jobs through the orchestrator, writes artifacts
// when -json is set, and returns the results plus an error covering any
// failed points (the healthy points are still returned and printed).
func sweep(name string, jobs []exp.Job) ([]exp.Result, error) {
	opts := exp.Options{
		Name:        name,
		Parallelism: *parallel,
		Cache:       resultCache,
		Progress:    os.Stderr,
	}
	if *ckptDir != "" && *ckptEvery > 0 {
		opts.Checkpoint = exp.CheckpointOptions{Dir: *ckptDir, Every: *ckptEvery, Resume: *resumeFlag}
	}
	rs := exp.Run(jobs, opts)
	if *jsonDir != "" {
		path, err := exp.WriteArtifacts(*jsonDir, name, rs)
		if err != nil {
			return rs, err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s\n", name, path)
		// Also write the canonical (comparison-format) artifact: the exact
		// bytes anton2serve returns for an identical sweep, which lets CI
		// diff server responses against bench output byte for byte.
		canon, err := exp.MarshalCanonical(rs)
		if err != nil {
			return rs, err
		}
		cpath := filepath.Join(*jsonDir, name+".canonical.json")
		if err := os.WriteFile(cpath, canon, 0o644); err != nil {
			return rs, err
		}
	}
	var err error
	if n := exp.Failed(rs); n > 0 {
		err = fmt.Errorf("%d of %d points failed: %w", n, len(rs), exp.FirstErr(rs))
	}
	return rs, err
}

// satShape is the machine for the headline saturation sweeps (fig9, fig10).
// The default is the paper's full 512-node machine — feasible since the
// active-set engine made paper-scale stepping cheap; -shape restores the
// previous 8x4x2 (or any other) scale, and -quick stays small.
func satShape() topo.TorusShape {
	if satShapeOverride != nil {
		return *satShapeOverride
	}
	if *quick {
		return topo.Shape3(4, 4, 2)
	}
	return topo.Shape3(8, 8, 8)
}

func header(title, paper string) {
	fmt.Println(title)
	for range title {
		fmt.Print("-")
	}
	fmt.Println()
	fmt.Println("paper:   ", paper)
}

func fig4() error {
	header("Figure 4 / permutation (1): worst-case on-chip switching",
		"optimized direction order limits worst-case mesh load to 2 torus channels")
	chip := topo.DefaultChip()
	winners, best := wctraffic.Best(chip, wctraffic.DefaultPolicy)
	_, throughOnly := wctraffic.Best(chip, wctraffic.Policy{Through: true})
	fmt.Printf("measured: best worst-case load %.1f (through-only skips: %.1f)\n", best, throughOnly)
	fmt.Printf("          %d of 24 direction orders achieve it; default %v", len(winners), topo.DefaultDirOrder)
	for _, w := range winners {
		if w.Order == topo.DefaultDirOrder {
			fmt.Printf(" is among them")
			break
		}
	}
	fmt.Println()
	def := wctraffic.Evaluate(chip, topo.DefaultDirOrder, wctraffic.DefaultPolicy)
	fmt.Printf("          worst-case permutation under the default order:\n")
	fmt.Printf("            in:  X+  X-  Y+  Y-  Z+  Z-\n            out:")
	for _, d := range def.WorstPerm {
		fmt.Printf(" %3v", d)
	}
	fmt.Println()
	return nil
}

func deadlockCheck() error {
	header("Section 2.5: VC schemes", "Anton scheme needs n+1=4 T-group VCs per class (vs 2n=6), deadlock-free")
	shape := topo.Shape3(4, 4, 4)
	// Every registered strategy must verify acyclic; the deliberately broken
	// no-dateline scheme (never registered) must be caught, proving the
	// analyzer has teeth.
	schemes := make([]route.Scheme, 0, 8)
	for _, s := range route.Strategies() {
		schemes = append(schemes, s)
	}
	schemes = append(schemes, route.NoDatelineScheme{})
	var failed []string
	for _, s := range schemes {
		cfg := route.NewConfig(topo.MustMachine(shape))
		cfg.Scheme = s
		err := deadlock.Verify(cfg, deadlock.Options{})
		verdict := "deadlock-free"
		if err != nil {
			verdict = "CYCLE FOUND"
		}
		_, registered := route.StrategyByName(s.Name())
		if registered == (err != nil) {
			failed = append(failed, s.Name())
		}
		fmt.Printf("measured: %-18s T:%d M:%d VCs/class on %v -> %s\n", s.Name(), s.TorusVCs(), s.MeshVCs(), shape, verdict)
	}
	if len(failed) > 0 {
		return fmt.Errorf("wrong deadlock verdict for: %s", strings.Join(failed, ", "))
	}
	return nil
}

func fig2() error {
	header("Figure 2: packaging", "512 nodes = 32 backplanes (16 nodecards each) in 4 racks")
	plan, err := packaging.Build(topo.Shape3(8, 8, 8))
	if err != nil {
		return err
	}
	fmt.Printf("measured: %d backplanes in %d racks; media:\n", plan.NumBackplanes(), plan.NumRacks())
	stats := plan.Stats()
	for _, m := range []packaging.Medium{packaging.BackplaneTrace, packaging.IntraRackCable, packaging.InterRackCable} {
		s := stats[m]
		l := packaging.Link{Medium: m, LengthCM: s.TotalCM / float64(s.Links)}
		fmt.Printf("            %-18s %5d links, latency %2d cycles\n", m, s.Links, l.LatencyCycles())
	}
	return nil
}

func fig3() error {
	header("Figure 3: multicast", "broadcast to a plane neighborhood saves 12 torus hops vs unicast")
	shape := topo.Shape3(8, 8, 8)
	root := topo.NodeCoord{X: 4, Y: 4, Z: 4}
	dests := multicast.PlaneNeighborhood(shape, root, topo.DimX, topo.DimY, 1, 0)
	tree := multicast.Build(shape, root, dests, topo.AllDimOrders[0], 0)
	uni := multicast.UnicastHops(shape, root, dests)
	fmt.Printf("measured: 8-node plane neighborhood: unicast %d hops, multicast tree %d hops, saved %d\n",
		uni, tree.TorusHops(), uni-tree.TorusHops())
	two := multicast.PlaneNeighborhood(shape, root, topo.DimX, topo.DimY, 1, 5)
	both := append(append([]topo.NodeEp(nil), dests...), two...)
	treeB := multicast.Build(shape, root, both, topo.AllDimOrders[0], 0)
	uniB := multicast.UnicastHops(shape, root, both)
	fmt.Printf("          with 2 endpoint copies per node: unicast %d, tree %d, saved %d (savings multiply)\n",
		uniB, treeB.TorusHops(), uniB-treeB.TorusHops())
	return nil
}

func table1() error {
	header("Table 1: component die area", "router 3.4%, endpoint adapter 1.1%, channel adapter 4.7%")
	t1 := area.Compute(area.Default()).Table1()
	fmt.Printf("measured: router %.1f%%, endpoint adapter %.1f%%, channel adapter %.1f%% (total %.1f%% < 10%%)\n",
		t1[area.Router], t1[area.EndpointAdapter], t1[area.ChannelAdapter],
		t1[area.Router]+t1[area.EndpointAdapter]+t1[area.ChannelAdapter])
	return nil
}

func table2() error {
	header("Table 2: network area by category",
		"queues 46.6, reduction 9.6, link 8.9, config 8.6, debug 7.8, misc 7.3, multicast 5.7, arbiters 5.4 (%)")
	byComp, total := area.Compute(area.Default()).Table2()
	fmt.Printf("measured: %-14s %8s %9s %8s %7s\n", "category", "router", "endpoint", "channel", "total")
	for k := area.Category(0); k < area.NumCategories; k++ {
		fmt.Printf("          %-14s %8.1f %9.1f %8.1f %7.1f\n",
			k, byComp[area.Router][k], byComp[area.EndpointAdapter][k], byComp[area.ChannelAdapter][k], total[k])
	}
	cfg := area.Default()
	cfg.Scheme = route.BaselineScheme{}
	growth := area.Compute(cfg).NetworkTotal()/area.Compute(area.Default()).NetworkTotal() - 1
	fmt.Printf("          ablation: baseline 2n-VC scheme costs +%.1f%% network area\n", 100*growth)
	return nil
}

func fig12() error {
	header("Figure 12: minimum-latency decomposition", "99 ns nearest-neighbor one-way; network only ~40%")
	cfg := core.DefaultLatencyConfig(topo.Shape3(4, 4, 4))
	cfg.Machine.Check = *checkFlag
	cfg.Machine.Telemetry = telemetryOpts("fig12")()
	defer printHeatmap()
	comps := core.DecomposeMinLatency(cfg)
	var total, network float64
	for _, c := range comps {
		total += c.NS
		if c.Name != "software send" && c.Name != "sync + handler dispatch" {
			network += c.NS
		}
	}
	fmt.Println("analytic budget:")
	for _, c := range comps {
		fmt.Printf("          %-30s %5.1f ns\n", c.Name, c.NS)
	}
	fmt.Printf("          total %.1f ns, network share %.0f%%\n", total, 100*network/total)
	traced, err := core.MeasureDecomposition(cfg)
	if err != nil {
		return err
	}
	fmt.Println("traced packet (simulated):")
	for _, c := range traced {
		fmt.Printf("          %-30s %5.1f ns\n", c.Name, c.NS)
	}
	fmt.Printf("          total %.1f ns\n", core.TotalNS(traced))
	return nil
}

func fig13() error {
	header("Figure 13: router energy vs injection rate",
		"E = 42.7 + 0.837h + (34.4 + 0.250n)(a/r) pJ; energy falls as rate rises past 0.5")
	flits := 1200
	if *quick {
		flits = 400
	}
	rates := [][2]int{{1, 8}, {1, 4}, {1, 2}, {5, 8}, {3, 4}, {7, 8}, {1, 1}}
	payloads := []core.PayloadKind{core.PayloadZeros, core.PayloadOnes, core.PayloadRandom}

	tel := telemetryOpts("fig13")
	var jobs []exp.Job
	for _, payload := range payloads {
		for _, r := range rates {
			mc := benchConfig(topo.Shape3(1, 1, 1))
			mc.Telemetry = tel()
			jobs = append(jobs, core.EnergyJob(core.EnergyConfig{
				Machine: mc, Model: power.PaperModel,
				RateNum: r[0], RateDen: r[1],
				Payload: payload, Flits: flits,
			}))
		}
	}
	rs, sweepErr := sweep("fig13", jobs)
	defer printHeatmap()

	fmt.Printf("measured: %-7s", "rate")
	for _, r := range rates {
		fmt.Printf(" %6.3f", float64(r[0])/float64(r[1]))
	}
	fmt.Println()
	var all []core.EnergyPoint
	for pi, payload := range payloads {
		fmt.Printf("          %-7s", payload)
		for ri := range rates {
			r := rs[pi*len(rates)+ri]
			if r.Err != nil {
				fmt.Printf(" %6s", "FAIL")
				continue
			}
			pt := r.Value.(core.EnergyPoint)
			fmt.Printf(" %6.1f", pt.PerFlitPJ)
			all = append(all, pt)
		}
		fmt.Println(" pJ/flit")
	}
	if len(all) == len(jobs) {
		m := core.FitEnergyModel(all)
		fmt.Printf("          refit: E = %.1f + %.3fh + (%.1f + %.3fn)(a/r) pJ\n",
			m.Fixed, m.PerBitFlip, m.PerActivation, m.PerActSetBit)
	}
	return sweepErr
}

func fig11() error {
	header("Figure 11: one-way latency vs hops", "80.7 ns fixed + 39.1 ns/hop; minimum 99 ns")
	// 4x4x4 keeps the run in seconds; the fit quality does not depend on
	// the maximum hop count (the paper's 8x8x8 reaches 12 hops).
	shape := topo.Shape3(4, 4, 4)
	if *quick {
		shape = topo.Shape3(4, 4, 2)
	}
	lcfg := core.DefaultLatencyConfig(shape)
	lcfg.Machine.Check = *checkFlag
	lcfg.Machine.Telemetry = telemetryOpts("fig11")()
	rs, sweepErr := sweep("fig11", []exp.Job{core.LatencyJob(lcfg)})
	defer printHeatmap()
	if sweepErr != nil {
		return sweepErr
	}
	res := rs[0].Value.(core.LatencyResult)
	fmt.Printf("measured: %.1f ns fixed + %.1f ns/hop (r2=%.4f); minimum %.1f ns on %v\n",
		res.InterceptNS, res.SlopeNS, res.R2, res.MinNS, shape)
	for _, p := range res.Points {
		fmt.Printf("          hops=%2d  %6.1f ns\n", p.Hops, p.MeanNS)
	}
	return nil
}

func fig9() error {
	header("Figure 9: throughput beyond saturation",
		"RR: uniform falls below 60%; IW: ~90% stable (8x8x8, weights from uniform loads)")
	batches := []int{64, 256, 1024}
	if *quick {
		batches = []int{32, 128}
	}
	patterns := []traffic.Pattern{traffic.NHop{N: 2}, traffic.Uniform{}}
	arbs := []struct {
		name string
		iw   bool
	}{{"round-robin", false}, {"inverse-weighted", true}}

	tel := telemetryOpts("fig9")
	var jobs []exp.Job
	for _, pat := range patterns {
		for _, arb := range arbs {
			for _, b := range batches {
				mc := benchConfig(satShape())
				if arb.iw {
					mc.Arbiter = 1
				}
				mc.Telemetry = tel()
				jobs = append(jobs, core.ThroughputJob(core.ThroughputConfig{
					Machine:        mc,
					Pattern:        pat,
					WeightPatterns: []traffic.Pattern{traffic.Uniform{}},
					Batch:          b,
				}))
			}
		}
	}
	rs, sweepErr := sweep("fig9", jobs)
	defer printHeatmap()

	i := 0
	for _, pat := range patterns {
		for _, arb := range arbs {
			fmt.Printf("measured: %-8s %-16s on %v:", pat.Name(), arb.name, satShape())
			for bi := range batches {
				r := rs[i]
				i++
				if r.Err != nil {
					fmt.Printf("  batch %4d: FAILED", batches[bi])
					continue
				}
				tr := r.Value.(core.ThroughputResult)
				fmt.Printf("  batch %4d: %.3f (fair %.3f)", tr.Batch, tr.Normalized, tr.Fairness)
			}
			fmt.Println()
		}
	}
	return sweepErr
}

func fig10() error {
	header("Figure 10: blending tornado and reverse tornado",
		"Both-weights ~85% across all blends; single weights fall off away from their pattern; None lowest")
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	batch := 256
	if *quick {
		fractions = []float64{0, 0.5, 1}
		batch = 96
	}
	modes := []core.WeightMode{core.WeightsNone, core.WeightsForward, core.WeightsReverse, core.WeightsBoth}

	tel := telemetryOpts("fig10")
	var jobs []exp.Job
	for _, mode := range modes {
		for _, f := range fractions {
			mc := benchConfig(satShape())
			mc.Telemetry = tel()
			jobs = append(jobs, core.BlendJob(core.BlendConfig{
				Machine:         mc,
				Weights:         mode,
				ForwardFraction: f,
				Batch:           batch,
			}))
		}
	}
	rs, sweepErr := sweep("fig10", jobs)
	defer printHeatmap()

	fmt.Printf("measured: %-8s", "weights")
	for _, f := range fractions {
		fmt.Printf("  f=%.2f", f)
	}
	fmt.Println("   (f = tornado fraction)")
	i := 0
	for _, mode := range modes {
		fmt.Printf("          %-8v", mode)
		for range fractions {
			r := rs[i]
			i++
			if r.Err != nil {
				fmt.Printf("  %6s", "FAIL")
				continue
			}
			fmt.Printf("  %6.3f", r.Value.(core.BlendResult).Normalized)
		}
		fmt.Println()
	}
	return sweepErr
}

// routecompare scores every registered routing strategy on one grid:
// deadlock verdict, VC/area cost, analytic saturation rate and path length,
// measured throughput and latency, and degradation under permanent link
// outages. The fault-aware strategy (angara) should absorb the outages
// un-degraded (routed-native counts) where the static schemes concede a
// degraded run (emergency reroutes).
func routecompare() error {
	header("Routing strategies: head-to-head comparison",
		"pluggable strategies; n+1 VCs (anton) vs 2n (baseline) vs 1 (vcless turn-restricted) vs fault-aware graph routing (angara)")
	shape := topo.Shape3(4, 4, 2)
	batch := 64
	failLinks := []int{0, 1, 2, 4}
	if *quick {
		shape = topo.Shape3(3, 3, 2)
		batch = 16
		failLinks = []int{0, 2}
	}
	jobs := core.RouteCompareJobs(benchConfig(shape), traffic.Uniform{}, batch, failLinks, 0)
	rs, sweepErr := sweep("routecompare", jobs)

	fmt.Printf("measured: %-12s %5s %14s %5s %6s %6s %6s %10s %9s %8s %8s %7s\n",
		"strategy", "fail", "deadlock", "tvcs", "area", "hops", "thpt", "pkts/kcyc", "mean lat", "p99 lat", "reroute", "outcome")
	last := ""
	for _, r := range rs {
		if r.Err != nil {
			fmt.Printf("          %-12s FAILED: %v\n", last, r.Err)
			continue
		}
		pt := r.Value.(core.RouteComparePoint)
		if pt.Strategy != last && last != "" {
			fmt.Println()
		}
		last = pt.Strategy
		verdict := "-"
		if pt.DeadlockVerified {
			verdict = "CYCLE FOUND"
			if pt.DeadlockFree {
				verdict = "deadlock-free"
			}
		}
		outcome := "ok"
		if pt.DegradedRun {
			outcome = "degraded"
		}
		reroute := fmt.Sprintf("%d", pt.Rerouted)
		if pt.RoutedNative > 0 {
			reroute = fmt.Sprintf("%dn", pt.RoutedNative)
		}
		fmt.Printf("          %-12s %5d %14s %5d %6.3f %6.2f %6.3f %10.2f %9.1f %8.0f %8s %7s\n",
			pt.Strategy, pt.FailLinks, verdict, pt.TorusVCs, pt.AreaVsAnton, pt.MeanTorusHops,
			pt.Throughput, pt.PacketsPerKCycle, pt.MeanLatency, pt.P99Latency, reroute, outcome)
	}
	return sweepErr
}

// faultsweep is the robustness experiment: throughput and delivery latency
// versus transient-corruption rate under the reliable-link layer, holding any
// -fault base spec (stalls, credit loss, failed links) fixed across points.
func faultsweep() error {
	header("Robustness: throughput and latency vs transient fault rate",
		"reliable links mask corruption at retransmission cost; degradation is smooth, not a cliff")
	rates := []float64{0, 0.0025, 0.005, 0.01, 0.02, 0.05}
	shape := topo.Shape3(4, 4, 2)
	batch := 96
	if *quick {
		rates = []float64{0, 0.005, 0.01, 0.02, 0.05}
		shape = topo.Shape3(2, 2, 2)
		batch = 32
	}
	if baseFault != nil {
		fmt.Printf("base fault spec: %s\n", baseFault.Canonical())
	}

	tel := telemetryOpts("faultsweep")
	var jobs []exp.Job
	for _, r := range rates {
		mc := benchConfig(shape)
		mc.Telemetry = tel()
		spec := fault.Spec{}
		if baseFault != nil {
			spec = *baseFault
		}
		spec.CorruptRate = r
		mc.Fault = &spec
		jobs = append(jobs, core.FaultJob(core.FaultConfig{
			Machine: mc,
			Pattern: traffic.Uniform{},
			Batch:   batch,
		}))
	}
	rs, sweepErr := sweep("faultsweep", jobs)
	defer printHeatmap()

	fmt.Printf("measured: %-8s %10s %12s %11s %12s %9s\n",
		"corrupt", "throughput", "mean latency", "p99 latency", "retransmits", "outcome")
	for i, r := range rs {
		if r.Err != nil {
			fmt.Printf("          %-8.4f %10s\n", rates[i], "FAILED")
			continue
		}
		pt := r.Value.(core.FaultPoint)
		outcome := "ok"
		if pt.DegradedRun {
			outcome = "degraded"
		}
		fmt.Printf("          %-8.4f %10.3f %12.1f %11.0f %12d %9s\n",
			rates[i], pt.Throughput, pt.MeanLatency, pt.P99Latency,
			pt.Counters["retransmits"], outcome)
	}
	return sweepErr
}
