package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"anton2/internal/core"
	"anton2/internal/exp"
	"anton2/internal/route"
	"anton2/internal/topo"
	"anton2/internal/workload"
)

// mdstep is the application-shaped experiment: an MD timestep as three
// dependent communication phases — halo exchange, multicast force
// distribution, global reduction — each ending at a fabric-quiescence
// barrier. One point per registered routing strategy; the headline number is
// end-to-end timestep time, so unlike the saturation sweeps lower is better.
// After the sweep, the run's record/replay guarantee is exercised inline: the
// default strategy's point is re-run with traffic capture enabled and the
// trace replayed on a fresh machine, which must reproduce every per-phase
// cycle count exactly (with -json, the capture is written alongside the
// artifacts).
func mdstep() error {
	header("MD timestep: phased application workload across routing strategies",
		"timestep = halo exchange + multicast force distribution + global reduction; figure of merit is end-to-end timestep time")
	shape := topo.Shape3(4, 4, 2)
	spec := workload.DefaultSpec()
	if *quick {
		shape = topo.Shape3(2, 2, 2)
	} else {
		spec.Timesteps = 2
	}
	if satShapeOverride != nil {
		shape = *satShapeOverride
	}
	fmt.Printf("workload: %s on %v\n", spec.Canonical(), shape)

	tel := telemetryOpts("mdstep")
	var jobs []exp.Job
	for _, strat := range route.Strategies() {
		mc := benchConfig(shape)
		mc.Telemetry = tel()
		mc.Scheme = strat
		jobs = append(jobs, core.MDStepJob(core.MDStepConfig{Machine: mc, Workload: spec}))
	}
	rs, sweepErr := sweep("mdstep", jobs)
	defer printHeatmap()

	fmt.Printf("measured: %-12s %9s %9s %9s %11s %10s %10s\n",
		"strategy", "halo", "mcast", "reduce", "total cyc", "cyc/step", "ns/step")
	for i, r := range rs {
		if r.Err != nil {
			fmt.Printf("          %-12s FAILED: %v\n", route.Strategies()[i].Name(), r.Err)
			continue
		}
		pt := r.Value.(core.MDStepPoint)
		// Sum each phase across timesteps so the row reads as one step's
		// budget regardless of the timestep count.
		byPhase := map[string]uint64{}
		for _, ph := range pt.Phases {
			byPhase[ph.Phase] += ph.Cycles
		}
		steps := uint64(pt.Timesteps)
		fmt.Printf("          %-12s %9d %9d %9d %11d %10.0f %10.1f\n",
			pt.Strategy, byPhase["halo"]/steps, byPhase["multicast"]/steps, byPhase["reduce"]/steps,
			pt.TotalCycles, pt.CyclesPerTimestep, pt.TotalNS/float64(pt.Timesteps))
	}
	if sweepErr != nil {
		return sweepErr
	}
	return mdstepReplayCheck(shape, spec)
}

// mdstepReplayCheck records the default strategy's point, replays the capture
// on a fresh machine, and fails the experiment on any per-phase divergence.
func mdstepReplayCheck(shape topo.TorusShape, spec workload.Spec) error {
	cfg := core.MDStepConfig{Machine: benchConfig(shape), Workload: spec}
	pt, tr, err := core.RunMDStepPointRecorded(cfg, true)
	if err != nil {
		return fmt.Errorf("record: %w", err)
	}
	rep, err := core.ReplayMDStepTrace(cfg, tr)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if !reflect.DeepEqual(rep.Phases, pt.Phases) || rep.TotalCycles != pt.TotalCycles {
		return fmt.Errorf("replay diverged from the recorded run: %d cycles vs %d", rep.TotalCycles, pt.TotalCycles)
	}
	fmt.Printf("replay:   %d captured events (%s) replayed to identical per-phase timing, %d cycles\n",
		len(tr.Events), pt.Strategy, rep.TotalCycles)
	if *jsonDir != "" {
		data, err := tr.Encode()
		if err != nil {
			return err
		}
		path := filepath.Join(*jsonDir, "mdstep.trace.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mdstep: wrote %s\n", path)
	}
	return nil
}
