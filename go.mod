module anton2

go 1.22
