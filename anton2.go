// Package anton2 is a software reproduction of the Anton 2 network
// architecture described in "Unifying on-chip and inter-node switching
// within the Anton 2 network" (Towles, Grossman, Greskamp, Shaw; ISCA 2014).
//
// Anton 2 unifies its on-chip network (a 4x4 mesh per ASIC) with the
// inter-node network (a channel-sliced 3-D torus of up to 4,096 ASICs): the
// mesh doubles as the switch for inter-node traffic. This package exposes:
//
//   - a cycle-level simulator of the unified network (routers, endpoint
//     adapters, torus-channel adapters, credit-based virtual cut-through,
//     request/reply traffic classes);
//   - the paper's routing algorithms: randomized minimal dimension-order
//     inter-node routing over two torus slices, direction-order on-chip
//     routing with skip channels, and the n+1-VC deadlock-avoidance scheme
//     of Section 2.5 (with the prior 2n-VC scheme for comparison);
//   - the inverse-weighted arbiters of Section 3, bit-accurate to the
//     paper's Figures 6-8, with offline load computation for weight tables;
//   - analysis tools: worst-case switching-demand search (Section 2.4),
//     static VC-dependency deadlock verification, silicon area and router
//     energy models, and the Figure 2 packaging model;
//   - experiment runners regenerating each figure and table of the paper's
//     evaluation.
//
// Quick start:
//
//	cfg := anton2.DefaultConfig(anton2.NewShape(4, 4, 4))
//	res, err := anton2.RunThroughput(anton2.ThroughputConfig{
//		Machine: cfg,
//		Pattern: anton2.Uniform{},
//		Batch:   256,
//	})
//
// See the examples directory and cmd/anton2bench for complete programs.
package anton2

import (
	"anton2/internal/arbiter"
	"anton2/internal/area"
	"anton2/internal/core"
	"anton2/internal/deadlock"
	"anton2/internal/exp"
	"anton2/internal/machine"
	"anton2/internal/multicast"
	"anton2/internal/packaging"
	"anton2/internal/power"
	"anton2/internal/route"
	"anton2/internal/telemetry"
	"anton2/internal/topo"
	"anton2/internal/traffic"
	"anton2/internal/wctraffic"
)

// Topology.
type (
	// Shape is the torus radix per dimension (4x4x1 up to 16x16x16).
	Shape = topo.TorusShape
	// NodeCoord locates an ASIC in the torus.
	NodeCoord = topo.NodeCoord
	// NodeEp identifies an endpoint adapter on a node.
	NodeEp = topo.NodeEp
	// MeshCoord locates a router within the on-chip 4x4 mesh.
	MeshCoord = topo.MeshCoord
	// Dim is a torus dimension (X, Y, Z).
	Dim = topo.Dim
	// Direction is a signed torus direction.
	Direction = topo.Direction
	// DimOrder is an inter-node dimension traversal order.
	DimOrder = topo.DimOrder
	// DirOrder is an on-chip direction-order algorithm.
	DirOrder = topo.DirOrder
)

// NewShape builds a torus shape.
func NewShape(kx, ky, kz int) Shape { return topo.Shape3(kx, ky, kz) }

// Torus dimensions and directions.
const (
	DimX = topo.DimX
	DimY = topo.DimY
	DimZ = topo.DimZ
	XPos = topo.XPos
	XNeg = topo.XNeg
	YPos = topo.YPos
	YNeg = topo.YNeg
	ZPos = topo.ZPos
	ZNeg = topo.ZNeg
)

// Simulator configuration and machine.
type (
	// Config parameterizes a simulated machine. Config.Engine selects the
	// cycle kernel (EngineActive default, EngineScan reference) and
	// Config.Shards the goroutine shard count; both are pure scheduling
	// choices with bit-identical results.
	Config = machine.Config
	// Machine is a fully wired simulated network.
	Machine = machine.Machine
)

// Cycle-engine selectors for Config.Engine.
const (
	// EngineActive is the default active-set scheduler: only components
	// with pending work tick, and fully idle cycles are skipped.
	EngineActive = machine.EngineActive
	// EngineScan is the reference loop ticking every component every
	// cycle; results are bit-identical to EngineActive, only slower.
	EngineScan = machine.EngineScan
)

// DefaultConfig returns the paper-faithful configuration for a shape.
func DefaultConfig(shape Shape) Config { return machine.DefaultConfig(shape) }

// NewMachine builds and wires a machine.
func NewMachine(cfg Config) (*Machine, error) { return machine.New(cfg) }

// CyclesToNS converts 1.5 GHz network cycles to nanoseconds.
func CyclesToNS(cycles float64) float64 { return machine.CyclesToNS(cycles) }

// Cycle-kernel benchmark (simulator speed, not a paper result).
type (
	// KernelConfig describes one cycle-kernel measurement.
	KernelConfig = core.KernelConfig
	// KernelResult is one measured cycles/sec point.
	KernelResult = core.KernelResult
	// KernelWorkload selects the kernel traffic shape.
	KernelWorkload = core.KernelWorkload
)

// Kernel workloads.
const (
	// KernelSparse trickles packets between a few distant endpoints —
	// the active-set scheduler's best case.
	KernelSparse = core.KernelSparse
	// KernelSaturated bursts uniform traffic from every core endpoint —
	// the scheduler's break-even case.
	KernelSaturated = core.KernelSaturated
)

// RunKernel measures simulated cycles per wall-clock second for one engine
// configuration and workload.
func RunKernel(cfg KernelConfig) (KernelResult, error) { return core.RunKernel(cfg) }

// Observability (attach via Config.Telemetry; never perturbs results).
type (
	// TelemetryOptions tunes the opt-in zero-cost-off telemetry collector:
	// windowed channel utilization, VC occupancy, arbiter grant shares, and
	// packet lifecycle traces.
	TelemetryOptions = telemetry.Options
	// TelemetryReport is the finished telemetry summary.
	TelemetryReport = telemetry.Report
)

// RenderHeatmap renders a telemetry report's torus channel utilization as a
// text heatmap.
func RenderHeatmap(r *TelemetryReport) string { return telemetry.RenderHeatmap(r) }

// Arbitration flavors.
const (
	RoundRobinArbiters      = arbiter.KindRoundRobin
	InverseWeightedArbiters = arbiter.KindInverseWeighted
)

// VC promotion schemes (Section 2.5).
type (
	// AntonScheme is the paper's n+1-VC promotion algorithm.
	AntonScheme = route.AntonScheme
	// BaselineScheme is the prior 2n-VC approach.
	BaselineScheme = route.BaselineScheme
)

// Traffic patterns (Section 4).
type (
	// Uniform is uniform random traffic.
	Uniform = traffic.Uniform
	// NHop is n-hop neighbor traffic.
	NHop = traffic.NHop
	// Pattern is any node-symmetric traffic pattern.
	Pattern = traffic.Pattern
)

// Tornado and ReverseTornado are the adversarial permutations of
// Section 4.2.
func Tornado() Pattern        { return traffic.Tornado() }
func ReverseTornado() Pattern { return traffic.ReverseTornado() }

// Experiments.
type (
	// ThroughputConfig drives a Figure 9 batch-throughput measurement.
	ThroughputConfig = core.ThroughputConfig
	// ThroughputResult is one measured throughput point.
	ThroughputResult = core.ThroughputResult
	// BlendConfig drives a Figure 10 pattern-blending measurement.
	BlendConfig = core.BlendConfig
	// BlendResult is one measured blend point.
	BlendResult = core.BlendResult
	// WeightMode selects the Figure 10 weight configuration.
	WeightMode = core.WeightMode
	// LatencyConfig drives the Figure 11 ping-pong measurement.
	LatencyConfig = core.LatencyConfig
	// LatencyResult is a full latency sweep with its linear fit.
	LatencyResult = core.LatencyResult
	// EnergyConfig drives a Section 4.5 router-energy measurement.
	EnergyConfig = core.EnergyConfig
	// EnergyPoint is one measured per-flit energy.
	EnergyPoint = core.EnergyPoint
	// PayloadKind selects the Figure 13 payload patterns.
	PayloadKind = core.PayloadKind
)

// Figure 10 weight modes.
const (
	WeightsNone    = core.WeightsNone
	WeightsForward = core.WeightsForward
	WeightsReverse = core.WeightsReverse
	WeightsBoth    = core.WeightsBoth
)

// Figure 13 payload patterns.
const (
	PayloadZeros  = core.PayloadZeros
	PayloadOnes   = core.PayloadOnes
	PayloadRandom = core.PayloadRandom
)

// Parallel experiment orchestration (internal/exp): sweeps fan independent
// points out over a bounded worker pool with per-point seeds derived from
// canonical spec hashes, so any pool size — including serial — produces
// bit-identical results.
type (
	// SweepOptions configures a sweep execution: worker-pool size,
	// retries, result cache, and progress reporting.
	SweepOptions = exp.Options
	// SweepResult is the structured per-point outcome written to JSON
	// artifacts.
	SweepResult = exp.Result
)

// SerialSweep runs sweep points one at a time in order.
func SerialSweep() SweepOptions { return exp.Serial() }

// ParallelSweep runs sweep points over a worker pool (0 = GOMAXPROCS).
func ParallelSweep(workers int) SweepOptions { return exp.Parallel(workers) }

// ThroughputSweepOpts runs a batch-size sweep through the orchestrator.
func ThroughputSweepOpts(cfg ThroughputConfig, batches []int, opts SweepOptions) ([]ThroughputResult, error) {
	return core.ThroughputSweepOpts(cfg, batches, opts)
}

// BlendSweepOpts runs a blend-fraction sweep through the orchestrator.
func BlendSweepOpts(cfg BlendConfig, fractions []float64, opts SweepOptions) ([]BlendResult, error) {
	return core.BlendSweepOpts(cfg, fractions, opts)
}

// EnergySweepOpts runs an injection-rate sweep through the orchestrator.
func EnergySweepOpts(mcfg Config, model power.Model, payload PayloadKind, rates [][2]int, flits int, opts SweepOptions) ([]EnergyPoint, error) {
	return core.EnergySweepOpts(mcfg, model, payload, rates, flits, opts)
}

// RunThroughput executes one Figure 9 style batch measurement.
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) { return core.RunThroughput(cfg) }

// ThroughputSweep runs a batch-size sweep (one Figure 9 curve).
func ThroughputSweep(cfg ThroughputConfig, batches []int) ([]ThroughputResult, error) {
	return core.ThroughputSweep(cfg, batches)
}

// RunBlend executes one Figure 10 blend measurement.
func RunBlend(cfg BlendConfig) (BlendResult, error) { return core.RunBlend(cfg) }

// BlendSweep measures a set of blend fractions under one weight mode.
func BlendSweep(cfg BlendConfig, fractions []float64) ([]BlendResult, error) {
	return core.BlendSweep(cfg, fractions)
}

// DefaultLatencyConfig returns a calibrated Figure 11 configuration.
func DefaultLatencyConfig(shape Shape) LatencyConfig { return core.DefaultLatencyConfig(shape) }

// RunLatency measures one-way latency versus inter-node hops (Figure 11).
func RunLatency(cfg LatencyConfig) (LatencyResult, error) { return core.RunLatency(cfg) }

// DecomposeMinLatency derives the Figure 12 minimum-latency budget.
func DecomposeMinLatency(cfg LatencyConfig) []core.LatencyComponent {
	return core.DecomposeMinLatency(cfg)
}

// MeasureDecomposition traces a nearest-neighbor packet through an idle
// machine and returns the observed per-stage latencies (measured Figure 12).
func MeasureDecomposition(cfg LatencyConfig) ([]core.LatencyComponent, error) {
	return core.MeasureDecomposition(cfg)
}

// RunEnergy performs one Section 4.5 two-route energy subtraction.
func RunEnergy(cfg EnergyConfig) (EnergyPoint, error) { return core.RunEnergy(cfg) }

// EnergySweep measures per-flit energy across injection rates (Figure 13).
func EnergySweep(mcfg Config, model power.Model, payload PayloadKind, rates [][2]int, flits int) ([]EnergyPoint, error) {
	return core.EnergySweep(mcfg, model, payload, rates, flits)
}

// FitEnergyModel refits the Section 4.5 energy model to measurements.
func FitEnergyModel(points []EnergyPoint) power.Model { return core.FitEnergyModel(points) }

// PaperEnergyModel is the coefficient set the paper fits to silicon.
var PaperEnergyModel = power.PaperModel

// Analyses.

// VerifyDeadlockFree statically checks a configuration's VC dependency graph
// for cycles (Section 2.5).
func VerifyDeadlockFree(shape Shape) error {
	m, err := topo.NewMachine(shape)
	if err != nil {
		return err
	}
	return deadlock.Verify(route.NewConfig(m), deadlock.Options{})
}

// WorstCaseSearch evaluates every direction-order on-chip routing algorithm
// against all permutation switching demands (Section 2.4) and returns the
// per-order results.
func WorstCaseSearch() []wctraffic.Result {
	return wctraffic.SearchAll(topo.DefaultChip(), wctraffic.DefaultPolicy)
}

// AreaBreakdown evaluates the silicon area model at the default
// configuration (Tables 1 and 2).
func AreaBreakdown() *area.Breakdown { return area.Compute(area.Default()) }

// PackagingPlan tiles a machine onto backplanes and racks (Figure 2).
func PackagingPlan(shape Shape) (*packaging.Plan, error) { return packaging.Build(shape) }

// MulticastTree compiles a destination set into a dimension-order multicast
// tree (Section 2.3, Figure 3).
func MulticastTree(shape Shape, root NodeCoord, dests []NodeEp, order DimOrder) *multicast.Tree {
	return multicast.Build(shape, root, dests, order, 0)
}

// MulticastTable is a compiled multicast group, loadable into
// Config.Multicast for simulation; the machine replicates labeled packets
// at endpoint and channel adapters per the table.
type MulticastTable = multicast.Compiled

// CompileMulticast flattens a tree into the loadable table form.
func CompileMulticast(shape Shape, tree *multicast.Tree) *MulticastTable {
	return tree.Compile(shape)
}

// MulticastSavings returns unicast-minus-multicast torus hops for a
// destination set.
func MulticastSavings(shape Shape, root NodeCoord, dests []NodeEp, order DimOrder) int {
	return multicast.Savings(shape, root, dests, order)
}
